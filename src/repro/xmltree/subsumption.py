"""Unordered subsumption and equivalence of XML trees (Section 3).

``T1 <= T2`` (*subsumption*) holds when ``V1 ⊆ V2``, the roots agree,
labels and attributes agree on ``V1``, and each node's child list in
``T1`` is a sublist of a permutation of its child list in ``T2``.

``T1 ≡ T2`` iff each subsumes the other: the trees are equal as
*unordered* trees (same node ids).  :func:`canonical_key` produces a
node-id-independent canonical form, giving the coarser relation
:func:`isomorphic_unordered` used to compare freshly built trees.
"""

from __future__ import annotations

from collections import Counter
from functools import cmp_to_key

from repro.xmltree.model import XMLTree

#: Canonical, hashable, order-insensitive form of a subtree:
#: (label, sorted attrs, text, sorted child keys).
CanonicalKey = tuple


def canonical_key(tree: XMLTree, node: str | None = None) -> CanonicalKey:
    """Canonical form of the subtree rooted at ``node`` (default root).

    Two trees have equal canonical keys iff they are equal up to child
    reordering **and** renaming of node identifiers.
    """
    if node is None:
        assert tree.root is not None
        node = tree.root
    attrs = tuple(sorted(tree.attrs_of(node).items()))
    text = tree.text(node)
    # Child keys may mix None (no text) and strings in the same slot,
    # which Python cannot order — sort on repr, a total order.
    children = tuple(sorted(
        (canonical_key(tree, child) for child in tree.children(node)),
        key=repr))
    return (tree.label(node), attrs, text, children)


def isomorphic_unordered(tree1: XMLTree, tree2: XMLTree) -> bool:
    """Equality up to child order and node renaming."""
    return canonical_key(tree1) == canonical_key(tree2)


def subsumed_by(tree1: XMLTree, tree2: XMLTree) -> bool:
    """``T1 <= T2`` per Section 3 (same node-id space)."""
    if tree1.root != tree2.root:
        return False
    nodes1 = tree1.nodes
    if not nodes1 <= tree2.nodes:
        return False
    for node in nodes1:
        if tree1.label(node) != tree2.label(node):
            return False
        if tree1.attrs_of(node) != tree2.attrs_of(node):
            return False
        text1 = tree1.text(node)
        text2 = tree2.text(node)
        children1 = Counter(tree1.children(node))
        children2 = Counter(tree2.children(node))
        if text1 is not None:
            # A text child is a one-element "list"; sublist of a
            # permutation requires the same text in tree2.
            if text2 != text1:
                return False
        else:
            if text2 is not None and children1:
                return False
            if children1 - children2:
                return False
    return True


def equivalent(tree1: XMLTree, tree2: XMLTree) -> bool:
    """``T1 ≡ T2``: equal as unordered trees (same node ids)."""
    return subsumed_by(tree1, tree2) and subsumed_by(tree2, tree1)


def strictly_subsumed_by(tree1: XMLTree, tree2: XMLTree) -> bool:
    """``T1 < T2``: subsumed but not equivalent."""
    return subsumed_by(tree1, tree2) and not subsumed_by(tree2, tree1)


def sort_children_canonically(tree: XMLTree) -> XMLTree:
    """A copy whose child lists are sorted by canonical key — a
    canonical representative of the ≡-class ``[T]``."""
    result = tree.copy()
    keys: dict[str, CanonicalKey] = {}

    def key_of(node: str) -> CanonicalKey:
        if node not in keys:
            attrs = tuple(sorted(result.attrs_of(node).items()))
            text = result.text(node)
            children = tuple(sorted(
                (key_of(c) for c in result.children(node)), key=repr))
            keys[node] = (result.label(node), attrs, text, children)
        return keys[node]

    for node in list(result.content):
        body = result.content[node]
        if isinstance(body, list):
            result.content[node] = sorted(
                body, key=lambda c: repr(key_of(c)))
    return result
