"""The XML tree model ``T = (V, lab, ele, att, root)`` (Definition 2).

* ``V`` — node identifiers (opaque strings here),
* ``lab`` — node labels (element names),
* ``ele`` — per node, either a list of child node ids or one string
  (text content); mixed content is excluded, as in the paper,
* ``att`` — partial function ``(node, @attr) -> string``,
* ``root`` — the root node.

Trees are built either through the :func:`elem` nested-literal helper,
the parser, or node-at-a-time via :meth:`XMLTree.add_node`.  After
construction call :meth:`XMLTree.freeze` (done automatically by the
public constructors) to validate tree-ness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import InvalidTreeError


@dataclass
class _Nested:
    """Intermediate value of the :func:`elem` literal syntax."""

    label: str
    attrs: dict[str, str]
    children: list["_Nested"]
    text: str | None


def elem(label: str, attrs: Mapping[str, str] | None = None,
         children: Iterable[_Nested] | None = None,
         text: str | None = None) -> _Nested:
    """Nested literal for building documents in code::

        doc = XMLTree.from_nested(
            elem("courses", children=[
                elem("course", {"cno": "csc200"}, [
                    elem("title", text="Automata Theory"),
                ]),
            ]))

    Attribute names may be given with or without the leading ``@``.
    """
    children = list(children or [])
    if text is not None and children:
        raise InvalidTreeError(
            f"element {label!r} cannot have both text and child elements "
            "(no mixed content, Definition 2)")
    normalized_attrs = {
        (name if name.startswith("@") else "@" + name): value
        for name, value in (attrs or {}).items()
    }
    return _Nested(label, normalized_attrs, children, text)


class XMLTree:
    """An XML tree per Definition 2."""

    def __init__(self) -> None:
        self.labels: dict[str, str] = {}
        #: node -> list of child ids, or a single string (text content)
        self.content: dict[str, list[str] | str] = {}
        self.attributes: dict[tuple[str, str], str] = {}
        self.root: str | None = None
        self._parents: dict[str, str] | None = None
        self._counter = 0

    # -- construction ------------------------------------------------------

    def new_node_id(self, hint: str = "v") -> str:
        """A node id unused in this tree."""
        while True:
            candidate = f"{hint}{self._counter}"
            self._counter += 1
            if candidate not in self.labels:
                return candidate

    def add_node(self, label: str, *, node_id: str | None = None,
                 parent: str | None = None,
                 attrs: Mapping[str, str] | None = None,
                 text: str | None = None) -> str:
        """Add a node; the first node added becomes the root."""
        node = node_id if node_id is not None else self.new_node_id()
        if node in self.labels:
            raise InvalidTreeError(f"duplicate node id {node!r}")
        self.labels[node] = label
        self.content[node] = text if text is not None else []
        for name, value in (attrs or {}).items():
            if not name.startswith("@"):
                name = "@" + name
            self.attributes[(node, name)] = value
        if parent is None:
            if self.root is not None:
                raise InvalidTreeError(
                    "tree already has a root; pass parent= for other nodes")
            self.root = node
        else:
            siblings = self.content.get(parent)
            if not isinstance(siblings, list):
                raise InvalidTreeError(
                    f"cannot attach children to text node {parent!r}")
            siblings.append(node)
        self._parents = None
        return node

    def set_text(self, node: str, text: str) -> None:
        """Make ``node`` a text-content node."""
        current = self.content.get(node)
        if isinstance(current, list) and current:
            raise InvalidTreeError(
                f"node {node!r} already has element children")
        self.content[node] = text
        self._parents = None

    @classmethod
    def from_nested(cls, nested: _Nested, *,
                    id_prefix: str = "v") -> "XMLTree":
        """Build a tree from :func:`elem` literals."""
        tree = cls()

        def build(item: _Nested, parent: str | None) -> None:
            node = tree.add_node(
                item.label,
                node_id=tree.new_node_id(id_prefix),
                parent=parent,
                attrs=item.attrs,
                text=item.text,
            )
            for child in item.children:
                build(child, node)

        build(nested, None)
        return tree.freeze()

    def freeze(self) -> "XMLTree":
        """Validate Definition 2 invariants; returns self."""
        if self.root is None:
            raise InvalidTreeError("tree has no root")
        seen: set[str] = set()
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node in seen:
                raise InvalidTreeError(
                    f"node {node!r} has two parents (not a tree)")
            seen.add(node)
            body = self.content.get(node)
            if body is None:
                raise InvalidTreeError(f"node {node!r} has no content entry")
            if isinstance(body, list):
                stack.extend(body)
        unreachable = set(self.labels) - seen
        if unreachable:
            raise InvalidTreeError(
                f"nodes unreachable from the root: {sorted(unreachable)}")
        for (node, attr), _value in self.attributes.items():
            if node not in self.labels:
                raise InvalidTreeError(
                    f"attribute {attr!r} on unknown node {node!r}")
        return self

    # -- accessors ---------------------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        """``V``: the node identifiers."""
        return frozenset(self.labels)

    def label(self, node: str) -> str:
        """``lab(node)``."""
        return self.labels[node]

    def children(self, node: str) -> list[str]:
        """Element children of a node (empty for text nodes)."""
        body = self.content[node]
        return list(body) if isinstance(body, list) else []

    def text(self, node: str) -> str | None:
        """Text content if ``ele(node)`` is a string, else ``None``."""
        body = self.content[node]
        return body if isinstance(body, str) else None

    def attr(self, node: str, name: str) -> str | None:
        """``att(node, @name)``; ``name`` may omit the ``@``."""
        if not name.startswith("@"):
            name = "@" + name
        return self.attributes.get((node, name))

    def attrs_of(self, node: str) -> dict[str, str]:
        """All attributes defined on a node."""
        return {name: value for (owner, name), value
                in self.attributes.items() if owner == node}

    def parent(self, node: str) -> str | None:
        """The unique parent, or ``None`` for the root."""
        if self._parents is None:
            parents: dict[str, str] = {}
            for owner, body in self.content.items():
                if isinstance(body, list):
                    for child in body:
                        parents[child] = owner
            self._parents = parents
        return self._parents.get(node)

    def iter_nodes(self) -> Iterator[str]:
        """Document-order (pre-order) traversal of node ids."""
        assert self.root is not None
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            body = self.content[node]
            if isinstance(body, list):
                stack.extend(reversed(body))

    def children_with_label(self, node: str, label: str) -> list[str]:
        """Element children carrying the given label."""
        return [child for child in self.children(node)
                if self.labels[child] == label]

    def size(self) -> int:
        """Number of nodes."""
        return len(self.labels)

    # -- transformation helpers ---------------------------------------------

    def copy(self) -> "XMLTree":
        """Deep copy (fresh dicts, same node ids)."""
        duplicate = XMLTree()
        duplicate.labels = dict(self.labels)
        duplicate.content = {
            node: (list(body) if isinstance(body, list) else body)
            for node, body in self.content.items()
        }
        duplicate.attributes = dict(self.attributes)
        duplicate.root = self.root
        duplicate._counter = self._counter
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"XMLTree(root={self.root!r}, nodes={len(self.labels)})")

    def __str__(self) -> str:
        from repro.xmltree.serializer import serialize_xml
        return serialize_xml(self)
