"""Conformance and compatibility of trees with DTDs (Definition 3).

* ``conforms(T, D)`` — ``T |= D``: labels are element types of ``D``,
  each node's child word is in the language of its production (ordered),
  text appears exactly where ``P(tau) = S``, attributes are exactly
  ``R(lab(v))``, and the root is labelled ``r``.
* ``conforms_unordered(T, D)`` — ``[T] |= D``: some member of the
  unordered equivalence class conforms, i.e. each node's child
  *multiset* matches its production up to permutation (Section 3).
* ``is_compatible(T, D)`` — ``T < D``: ``paths(T) ⊆ paths(D)``.
* ``tree_paths(T)`` — ``paths(T)``.
"""

from __future__ import annotations

from repro.errors import ConformanceError
from repro.dtd.model import DTD
from repro.dtd.paths import TEXT_STEP, Path
from repro.regex.ast import PCData
from repro.regex.matching import matches, matches_multiset
from repro.xmltree.model import XMLTree


def conformance_violations(tree: XMLTree, dtd: DTD, *,
                           ordered: bool = True,
                           limit: int | None = None) -> list[str]:
    """Human-readable list of Definition 3 violations (empty if none)."""
    violations: list[str] = []

    def report(message: str) -> bool:
        violations.append(message)
        return limit is not None and len(violations) >= limit

    assert tree.root is not None
    if tree.label(tree.root) != dtd.root:
        if report(f"root is <{tree.label(tree.root)}>, expected "
                  f"<{dtd.root}>"):
            return violations
    for node in tree.iter_nodes():
        label = tree.label(node)
        if label not in dtd.element_types:
            if report(f"node {node}: undeclared element type <{label}>"):
                return violations
            continue
        production = dtd.content(label)
        text = tree.text(node)
        children = tree.children(node)
        if isinstance(production, PCData):
            if text is None:
                if report(f"node {node} <{label}>: expected text content "
                          "(#PCDATA)"):
                    return violations
        else:
            if text is not None:
                if report(f"node {node} <{label}>: unexpected text content"):
                    return violations
            else:
                word = [tree.label(child) for child in children]
                ok = (matches(production, word) if ordered
                      else matches_multiset(production, word))
                if not ok:
                    if report(
                        f"node {node} <{label}>: children "
                        f"({', '.join(word) or 'none'}) do not match "
                            f"{production.to_dtd()}"):
                        return violations
        expected_attrs = dtd.attrs(label)
        actual_attrs = frozenset(tree.attrs_of(node))
        missing = expected_attrs - actual_attrs
        extra = actual_attrs - expected_attrs
        if missing:
            if report(f"node {node} <{label}>: missing attributes "
                      f"{sorted(missing)}"):
                return violations
        if extra:
            if report(f"node {node} <{label}>: undeclared attributes "
                      f"{sorted(extra)}"):
                return violations
    return violations


def conforms(tree: XMLTree, dtd: DTD) -> bool:
    """``T |= D`` with ordered child words (Definition 3)."""
    return not conformance_violations(tree, dtd, ordered=True, limit=1)


def conforms_unordered(tree: XMLTree, dtd: DTD) -> bool:
    """``[T] |= D``: some reordering of each node's children conforms."""
    return not conformance_violations(tree, dtd, ordered=False, limit=1)


def validate_conformance(tree: XMLTree, dtd: DTD, *,
                         ordered: bool = True) -> None:
    """Raise :class:`ConformanceError` with all violations if ``T`` does
    not conform."""
    violations = conformance_violations(tree, dtd, ordered=ordered)
    if violations:
        raise ConformanceError(
            "tree does not conform to the DTD:\n  " +
            "\n  ".join(violations))


def tree_paths(tree: XMLTree) -> frozenset[Path]:
    """``paths(T)``: all root-to-somewhere label paths, including
    attribute and text (``S``) extensions."""
    assert tree.root is not None
    paths: set[Path] = set()

    def visit(node: str, path: Path) -> None:
        paths.add(path)
        for name in tree.attrs_of(node):
            paths.add(path.child(name))
        if tree.text(node) is not None:
            paths.add(path.child(TEXT_STEP))
        for child in tree.children(node):
            visit(child, path.child(tree.label(child)))

    visit(tree.root, Path.root(tree.label(tree.root)))
    return frozenset(paths)


def is_compatible(tree: XMLTree, dtd: DTD) -> bool:
    """``T < D``: every path of the tree is a path of the DTD.

    Works for recursive DTDs too (path membership is checked
    step-by-step rather than via enumeration of ``paths(D)``).
    """
    return all(dtd.is_path(path) for path in tree_paths(tree))
