"""The HTTP transport of ``xnf serve``.

One :class:`ThreadingHTTPServer` (the :class:`repro.obs.export.
MetricsExporter` pattern — stdlib-only, daemon serving thread, one
handler thread per connection) carries both planes on a single port:

* the **service plane** — ``POST /v1/implication`` / ``/v1/xnf-check``
  / ``/v1/normalize`` with JSON bodies, each request passing the
  :class:`~repro.serve.admission.AdmissionGate` before its body is even
  read (shedding must stay cheap under overload) and then running
  through the pure handlers in :mod:`repro.serve.handlers` under a
  thread-scoped guard budget;
* the **control plane** — ``GET /metrics`` (Prometheus text of the
  live registry, including every ``serve.*`` series), ``GET /healthz``
  (liveness: 200 for the whole process lifetime, draining included)
  and ``GET /readyz`` (readiness: 503 the instant a drain starts, so
  load balancers stop routing before the listener goes away).

Shutdown is :meth:`NormalizationServer.drain`: flip the gate (new
work refused with 503, queued waiters bounced), wait for in-flight
requests up to the drain deadline, then close the listener.  It is
idempotent — a second SIGTERM mid-drain joins the same wait.

Transport-level refusals reuse the handlers' error schema, so a client
can always parse ``body["error"]["kind"]``:

* 429 ``shed`` (+ ``Retry-After``) — admission queue full;
* 503 ``queue-timeout`` (+ ``Retry-After``) — queued past the timeout;
* 503 ``draining`` — shutdown in progress;
* 400 ``usage`` — unreadable/oversized/non-JSON body;
* 404/405 ``usage`` — unknown path / wrong method.

The accounting seam is :func:`account` — one call per finished
request, fully gated on ``obs.enabled`` so the disabled service pays
only the flag check (``benchmarks/bench_serve.py`` holds this seam
under 1% of a no-op request).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.obs import metrics as _obs
from repro.obs.export import CONTENT_TYPE as _PROM_CONTENT_TYPE
from repro.obs.export import prometheus_text
from repro.serve import handlers
from repro.serve.admission import AdmissionGate, Decision
from repro.serve.cache import SpecCache
from repro.serve.handlers import ENDPOINTS, BudgetDefaults

_JSON = "application/json"

#: Default cap on request bodies; a DTD larger than this is a client
#: error, not a workload.
MAX_BODY_BYTES = 1 << 20


def account(endpoint: str, status: int, elapsed_s: float) -> None:
    """Record one finished request (the benchmarked seam).

    Emits ``serve.requests`` / ``serve.status.<code>`` counters and a
    per-endpoint latency histogram
    (``serve.request.<op>_seconds`` on ``/metrics``).  Must stay a
    single flag check while obs is disabled.
    """
    if not _obs.enabled:
        return
    _obs.inc("serve.requests")
    _obs.inc(f"serve.status.{status}")
    op = endpoint.rsplit("/", 1)[-1] or "root"
    _obs.observe_seconds(f"serve.request.{op}", elapsed_s)


def _refusal(status: int, kind: str, type_name: str,
             message: str) -> dict:
    return {"error": {"type": type_name, "message": message,
                      "status": status, "exit_code": 4
                      if kind in ("shed", "queue-timeout", "draining")
                      else 2, "kind": kind}}


class NormalizationServer:
    """The long-running ``(D, Σ)`` service behind ``xnf serve``.

    ``port=0`` binds an ephemeral port (read :attr:`port` after
    :meth:`start`).  A bind failure (port in use, bad host) raises
    ``OSError`` from :meth:`start` — the CLI maps it to the structural
    exit code 2.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1", *,
                 max_inflight: int = 8, max_queue: int = 64,
                 queue_timeout_s: float = 5.0,
                 drain_deadline_s: float = 10.0,
                 cache_capacity: int = 128,
                 defaults: BudgetDefaults | None = None,
                 max_body_bytes: int = MAX_BODY_BYTES,
                 retry_after_s: int = 1) -> None:
        self.host = host
        self.requested_port = port
        self.drain_deadline_s = drain_deadline_s
        self.max_body_bytes = max_body_bytes
        self.retry_after_s = retry_after_s
        self.gate = AdmissionGate(max_inflight=max_inflight,
                                  max_queue=max_queue,
                                  queue_timeout_s=queue_timeout_s)
        self.cache = SpecCache(capacity=cache_capacity)
        self.defaults = defaults if defaults is not None \
            else BudgetDefaults()
        self._server: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at = 0.0
        self._drain_lock = threading.Lock()
        self._drain_result: bool | None = None

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "NormalizationServer":
        if self._server is not None:
            raise RuntimeError("server already started")
        outer = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_GET(self) -> None:   # noqa: N802 (http.server API)
                outer._handle_get(self)

            def do_POST(self) -> None:  # noqa: N802 (http.server API)
                outer._handle_post(self)

            def log_message(self, *args: Any) -> None:
                return None  # request traffic must not spam stderr

        self._server = ThreadingHTTPServer(
            (self.host, self.requested_port), Handler)
        self._server.daemon_threads = True
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def drain(self, deadline_s: float | None = None) -> bool:
        """Graceful shutdown: refuse new work, finish in-flight, close.

        Returns ``True`` when every in-flight request completed within
        the deadline.  Idempotent — concurrent/repeated calls share
        one drain and one result.
        """
        if deadline_s is None:
            deadline_s = self.drain_deadline_s
        with self._drain_lock:
            if self._drain_result is None:
                if _obs.enabled:
                    _obs.inc("serve.drain.started")
                # Readiness flips inside drain(); the listener stays up
                # answering 503 until the in-flight work is done.
                clean = self.gate.drain(deadline_s)
                if _obs.enabled:
                    _obs.inc("serve.drain.clean" if clean
                             else "serve.drain.deadline_expired")
                self._close()
                self._drain_result = clean
            return self._drain_result

    def stop(self) -> None:
        """Abortive shutdown for tests: close without draining."""
        self._close()

    def _close(self) -> None:
        server, thread = self._server, self._thread
        if server is None:
            return
        self._server = None
        self._thread = None
        server.shutdown()
        server.server_close()
        if thread is not None:
            thread.join(timeout=5.0)

    def __enter__(self) -> "NormalizationServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.server_address[1]

    def url(self, path: str = "") -> str:
        return f"http://{self.host}:{self.port}{path}"

    # -- control plane -------------------------------------------------

    def _handle_get(self, request: BaseHTTPRequestHandler) -> None:
        path = request.path.split("?", 1)[0]
        if path == "/metrics":
            if _obs.enabled:
                _obs.inc("obs.export.scrapes")
            body = prometheus_text(_obs.snapshot()).encode("utf-8")
            self._respond(request, 200, _PROM_CONTENT_TYPE, body)
        elif path == "/healthz":
            payload = {"status": "ok",
                       "draining": self.gate.draining,
                       "uptime_s": round(
                           time.monotonic() - self._started_at, 3)}
            self._respond_json(request, 200, payload)
        elif path == "/readyz":
            if self.gate.draining:
                self._respond_json(
                    request, 503, _refusal(
                        503, "draining", "Draining",
                        "server is draining"))
            else:
                self._respond_json(request, 200, {"status": "ready"})
        elif path in ENDPOINTS:
            self._respond_json(request, 405, _refusal(
                405, "usage", "MethodNotAllowed",
                f"{path} accepts POST only"))
        else:
            self._respond_json(request, 404, _refusal(
                404, "usage", "NotFound",
                "try /v1/implication, /v1/xnf-check, /v1/normalize, "
                "/metrics, /healthz, /readyz"))

    # -- service plane -------------------------------------------------

    def _handle_post(self, request: BaseHTTPRequestHandler) -> None:
        endpoint = request.path.split("?", 1)[0]
        started = time.perf_counter()
        if endpoint not in ENDPOINTS:
            self._respond_json(request, 404, _refusal(
                404, "usage", "NotFound",
                f"no such endpoint: {endpoint}"))
            account(endpoint, 404, time.perf_counter() - started)
            return
        # Admission runs before the body is read: shedding an
        # overloaded request must not cost a body parse.  The injected
        # ``serve.admission`` fault surfaces through the same error
        # contract as handler failures.
        try:
            decision = self.gate.admit()
        except BaseException as exc:  # noqa: BLE001 - contract boundary
            status, body = handlers.error_response(
                exc, context=f"admission:{endpoint}")
            self._respond_json(request, status, body, close=True)
            account(endpoint, status, time.perf_counter() - started)
            return
        if decision is not Decision.ADMITTED:
            status, body, headers = self._refuse(decision)
            self._respond_json(request, status, body, headers=headers,
                               close=True)
            account(endpoint, status, time.perf_counter() - started)
            return
        try:
            payload, parse_error = self._read_json(request)
            if parse_error is not None:
                status, body = parse_error
            else:
                status, body = handlers.handle(
                    endpoint, payload, cache=self.cache,
                    defaults=self.defaults)
            # The permit must outlive the response write: a drain
            # completes only once every admitted request has put its
            # answer on the wire — releasing earlier lets the process
            # exit mid-write and tear the reply.
            self._respond_json(request, status, body)
        finally:
            self.gate.release()
        account(endpoint, status, time.perf_counter() - started)

    def _refuse(self, decision: Decision,
                ) -> tuple[int, dict, dict[str, str]]:
        retry = {"Retry-After": str(self.retry_after_s)}
        if decision is Decision.SHED:
            return 429, _refusal(
                429, "shed", "Overloaded",
                f"admission queue full "
                f"({self.gate.max_queue} waiting)"), retry
        if decision is Decision.TIMEOUT:
            return 503, _refusal(
                503, "queue-timeout", "QueueTimeout",
                f"queued longer than "
                f"{self.gate.queue_timeout_s}s"), retry
        return 503, _refusal(503, "draining", "Draining",
                             "server is draining"), {}

    def _read_json(self, request: BaseHTTPRequestHandler,
                   ) -> tuple[Any, tuple[int, dict] | None]:
        """The parsed body, or ``(None, (status, error_body))``."""
        try:
            length = int(request.headers.get("Content-Length", "0"))
        except ValueError:
            length = -1
        if length < 0:
            return None, (400, _refusal(
                400, "usage", "BadRequest",
                "missing or invalid Content-Length"))
        if length > self.max_body_bytes:
            return None, (400, _refusal(
                400, "usage", "BadRequest",
                f"body exceeds {self.max_body_bytes} bytes"))
        raw = request.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8")), None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return None, (400, _refusal(
                400, "usage", "BadRequest",
                f"request body is not valid JSON: {exc}"))

    # -- responses -----------------------------------------------------

    def _respond_json(self, request: BaseHTTPRequestHandler,
                      status: int, payload: dict, *,
                      headers: dict[str, str] | None = None,
                      close: bool = False) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n") \
            .encode("utf-8")
        try:
            request.send_response(status)
            request.send_header("Content-Type", _JSON)
            request.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                request.send_header(name, value)
            if close:
                # The body may be unread (shed before parse); keeping
                # the connection alive would desynchronize it.
                request.send_header("Connection", "close")
                request.close_connection = True
            request.end_headers()
            request.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing left to tell it

    @staticmethod
    def _respond(request: BaseHTTPRequestHandler, status: int,
                 content_type: str, body: bytes) -> None:
        try:
            request.send_response(status)
            request.send_header("Content-Type", content_type)
            request.send_header("Content-Length", str(len(body)))
            request.end_headers()
            request.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass
