"""Pure request handlers: (endpoint, payload) -> (status, body).

Everything HTTP-independent about the service lives here so the
contract is unit- and chaos-testable without sockets: envelope
validation, tighten-only budget merging, spec-cache lookup, the three
endpoint computations, and the complete exception→response mapping.
The HTTP layer (:mod:`repro.serve.server`) only does transport:
admission, byte I/O, and signal handling.

Error contract (mirrors the CLI exit-code table, see docs/SERVE.md):

=====================================  ======  =========  ==========
condition                              status  exit_code  kind
=====================================  ======  =========  ==========
malformed envelope / unknown budget      400        2      usage
input rejected by the pipeline           422        3      input
(ParseError, FD syntax, unsupported)
injected fault (FaultError)              500        3      fault
budget tripped (ResourceExhausted)       408        4      resource
anything that is not a ReproError        500       70      contract
=====================================  ======  =========  ==========

Every error body has the same shape::

    {"error": {"type": "ParseError", "message": "...",
               "status": 422, "exit_code": 3, "kind": "input"}}

The ``/v1/implication`` endpoint is special-cased for budget trips
*inside the decision*: :meth:`repro.spec.XMLSpec.decide` converts a
tripped limit into an honest ``unknown`` verdict (200), so only trips
during spec parsing/caching surface as 408 there.

A non-``ReproError`` escaping a handler is a **contract breach**: it
is counted (``serve.contract_breach``), logged with its traceback, and
reported as an opaque 500 — the server thread itself never dies.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Any

from repro import guard
from repro.errors import FaultError, ReproError, ResourceExhausted
from repro.faults import plan as _faults
from repro.obs import metrics as _obs
from repro.serve.cache import SpecCache

log = logging.getLogger("repro.serve")

#: Endpoint path -> handler name; the HTTP layer routes on this.
ENDPOINTS = ("/v1/implication", "/v1/xnf-check", "/v1/normalize")

#: JSON budget keys accepted from clients (``timeout`` matches the CLI
#: flag and maps to the guard's wall-clock deadline).
_BUDGET_KEYS = ("timeout", "max_steps", "max_branches", "max_nodes")

_SITES = {
    "/v1/implication": _faults.register_site(
        "serve.handler.implication", "serve",
        "implication handler, after spec lookup, before decide()"),
    "/v1/xnf-check": _faults.register_site(
        "serve.handler.xnf", "serve",
        "XNF-check handler, after spec lookup, before the check"),
    "/v1/normalize": _faults.register_site(
        "serve.handler.normalize", "serve",
        "normalize handler, after spec lookup, before decomposition"),
}


class BadRequest(ReproError):
    """A malformed request envelope (maps to 400 / usage)."""


@dataclass(frozen=True)
class BudgetDefaults:
    """Server-side per-request ceilings.

    ``None`` leaves a dimension unlimited.  Clients may *tighten* any
    dimension through the request's ``budget`` object; attempts to
    loosen are clamped back to these ceilings, so operator policy
    always wins.
    """

    timeout: float | None = 10.0
    max_steps: int | None = 2_000_000
    max_branches: int | None = 200_000
    max_nodes: int | None = 1_000_000

    def merged(self, requested: Any) -> dict[str, float | int | None]:
        """Effective guard kwargs after tighten-only merging."""
        ceilings = {"timeout": self.timeout, "max_steps": self.max_steps,
                    "max_branches": self.max_branches,
                    "max_nodes": self.max_nodes}
        if requested is None:
            merged = ceilings
        else:
            if not isinstance(requested, dict):
                raise BadRequest("'budget' must be an object")
            unknown = sorted(set(requested) - set(_BUDGET_KEYS))
            if unknown:
                raise BadRequest(
                    f"unknown budget key(s): {', '.join(unknown)}; "
                    f"allowed: {', '.join(_BUDGET_KEYS)}")
            merged = {}
            for key, ceiling in ceilings.items():
                value = requested.get(key)
                if value is None:
                    merged[key] = ceiling
                    continue
                if isinstance(value, bool) \
                        or not isinstance(value, (int, float)):
                    raise BadRequest(f"budget.{key} must be a number")
                if value <= 0:
                    raise BadRequest(f"budget.{key} must be positive")
                merged[key] = (value if ceiling is None
                               else min(value, ceiling))
        return {"deadline": merged["timeout"],
                "max_steps": merged["max_steps"],
                "max_branches": merged["max_branches"],
                "max_nodes": merged["max_nodes"]}


def handle(endpoint: str, payload: Any, *, cache: SpecCache,
           defaults: BudgetDefaults) -> tuple[int, dict]:
    """Serve one request; never raises.

    Returns ``(http_status, body)`` where ``body`` is JSON-ready.  The
    endpoint work runs under a thread-scoped guard budget so a
    pathological request degrades alone.
    """
    try:
        return _dispatch(endpoint, payload, cache, defaults)
    except BaseException as exc:   # noqa: BLE001 - the breach boundary
        return error_response(exc, context=endpoint)


def error_response(exc: BaseException, *,
                   context: str = "?") -> tuple[int, dict]:
    """Map any exception to the structured error contract.

    Shared by the handlers and the HTTP layer (admission faults raise
    outside :func:`handle`).  Counts and logs contract breaches.
    """
    if isinstance(exc, BadRequest):
        return _error(400, 2, "usage", exc)
    if isinstance(exc, ResourceExhausted):
        return _error(408, 4, "resource", exc)
    if isinstance(exc, FaultError):
        return _error(500, 3, "fault", exc)
    if isinstance(exc, ReproError):
        return _error(422, 3, "input", exc)
    if _obs.enabled:
        _obs.inc("serve.contract_breach")
    log.error("contract breach handling %s", context, exc_info=exc)
    return _error(500, 70, "contract", exc)


def _dispatch(endpoint: str, payload: Any, cache: SpecCache,
              defaults: BudgetDefaults) -> tuple[int, dict]:
    if endpoint not in ENDPOINTS:
        raise BadRequest(f"unknown endpoint {endpoint!r}; "
                         f"expected one of: {', '.join(ENDPOINTS)}")
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    dtd_text = _field(payload, "dtd")
    fds_text = _field(payload, "fds", required=False, default="")
    root = _field(payload, "root", required=False, default=None)
    engine = _field(payload, "engine", required=False, default="auto")
    fd_text = None
    if endpoint == "/v1/implication":
        fd_text = _field(payload, "fd")
    budget_kwargs = defaults.merged(payload.get("budget"))

    with guard.limits(scope="thread", **budget_kwargs):
        spec = cache.get(dtd_text, fds_text, root=root, engine=engine)
        if _faults.active:
            _faults.fire(_SITES[endpoint])
        if endpoint == "/v1/implication":
            verdict = spec.decide(fd_text)
            return 200, {"verdict": verdict.value.lower(),
                         "reason": verdict.reason,
                         "limit": verdict.limit}
        if endpoint == "/v1/xnf-check":
            violations = spec.xnf_violations()
            return 200, {"in_xnf": not violations,
                         "violations": [str(fd) for fd in violations]}
        result = spec.normalize()
        return 200, {
            "dtd": str(result.dtd),
            "fds": [str(fd) for fd in result.sigma],
            "steps": [{"kind": step.kind, "fd": str(step.fd),
                       "description": step.description}
                      for step in result.steps],
        }


def _field(payload: dict, name: str, *, required: bool = True,
           default: Any = None) -> Any:
    value = payload.get(name)
    if value is None:   # absent and explicit null are both "not given"
        if required:
            raise BadRequest(f"missing required field {name!r}")
        return default
    if not isinstance(value, str):
        raise BadRequest(f"field {name!r} must be a string")
    return value


def _error(status: int, exit_code: int, kind: str,
           exc: BaseException) -> tuple[int, dict]:
    message = str(exc) or type(exc).__name__
    if kind == "contract":
        # Never leak internals for unexpected failures.
        message = f"internal error ({type(exc).__name__})"
    return status, {"error": {"type": type(exc).__name__,
                              "message": message,
                              "status": status,
                              "exit_code": exit_code,
                              "kind": kind}}
