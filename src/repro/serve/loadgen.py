"""A seeded load generator for the normalization service.

Drives :func:`repro.runtime.corpus.iter_tasks` — the same
deterministic spec corpus the batch runtime executes — through the
HTTP API from ``concurrency`` client threads, and reports throughput
plus latency quantiles.  Used three ways:

* ``benchmarks/bench_serve.py`` — sustained-throughput / tail-latency
  numbers against an in-process server (advisory);
* the CI ``serve-smoke`` job — live traffic while ``/metrics`` and
  ``/readyz`` are scraped and a SIGTERM lands mid-run, asserting no
  accepted request is ever lost;
* ``python -m repro.serve.loadgen URL`` — ad-hoc load from a shell.

Every response is classified, never dropped silently: 2xx/4xx/5xx
land in :attr:`LoadReport.statuses`, transport failures (connection
refused/reset — the listener went away mid-request) in
:attr:`LoadReport.lost`.  A clean drain must show ``lost == 0``: a
draining server refuses with 503, it never kills an accepted request.
"""

from __future__ import annotations

import argparse
import http.client
import json
import math
import sys
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field

from repro.runtime.corpus import iter_tasks

#: Corpus operation -> service endpoint.
OP_ENDPOINTS = {"implies": "/v1/implication",
                "check": "/v1/xnf-check",
                "normalize": "/v1/normalize"}


def task_request(task: dict) -> tuple[str, dict]:
    """Map one corpus task dict to ``(endpoint, json_payload)``."""
    endpoint = OP_ENDPOINTS[task["op"]]
    payload = {"dtd": task["dtd_text"], "fds": task["fds_text"]}
    if task["op"] == "implies":
        payload["fd"] = task["fd"]
    return endpoint, payload


def percentile(ordered: list[float], quantile: float) -> float:
    """Nearest-rank percentile of a sorted, non-empty list."""
    rank = max(0, min(len(ordered) - 1,
                      int(math.ceil(quantile * len(ordered))) - 1))
    return ordered[rank]


@dataclass
class LoadReport:
    """What one load run observed."""

    sent: int = 0
    statuses: dict[int, int] = field(default_factory=dict)
    #: Transport-level failures: connection refused/reset, timeouts.
    lost: int = 0
    wall_s: float = 0.0
    #: Latencies (seconds) of requests that got *any* HTTP response.
    latencies: list[float] = field(default_factory=list)
    #: Latencies of accepted (2xx) responses only.
    accepted_latencies: list[float] = field(default_factory=list)

    def count(self, *, status_class: int | None = None) -> int:
        """Responses seen, optionally restricted to one class (2 ->
        2xx, ...)."""
        return sum(count for status, count in self.statuses.items()
                   if status_class is None
                   or status // 100 == status_class)

    def throughput_rps(self) -> float:
        return self.count() / self.wall_s if self.wall_s > 0 else 0.0

    def quantiles(self, *, accepted_only: bool = True,
                  ) -> dict[str, float]:
        values = sorted(self.accepted_latencies if accepted_only
                        else self.latencies)
        if not values:
            return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        return {"p50": percentile(values, 0.50),
                "p95": percentile(values, 0.95),
                "p99": percentile(values, 0.99)}

    def summary(self) -> dict:
        """A JSON-ready digest (what ``__main__`` prints)."""
        return {
            "sent": self.sent,
            "responses": {str(status): count for status, count
                          in sorted(self.statuses.items())},
            "lost": self.lost,
            "wall_s": round(self.wall_s, 4),
            "throughput_rps": round(self.throughput_rps(), 2),
            "latency": {name: round(value, 5) for name, value
                        in self.quantiles().items()},
        }


def run_load(base_url: str, *, requests: int = 100, seed: int = 7,
             concurrency: int = 4, timeout_s: float = 30.0,
             budget: dict | None = None) -> LoadReport:
    """Fire ``requests`` corpus tasks at ``base_url`` and report.

    Deterministic workload (``seed`` feeds the corpus generator);
    wall-clock numbers of course are not.  ``budget``, when given, is
    attached to every request body (client-side tightening).
    """
    base = base_url.rstrip("/")
    tasks = iter_tasks(requests, seed=seed)
    lock = threading.Lock()
    report = LoadReport()

    def next_task() -> dict | None:
        with lock:
            return next(tasks, None)

    def record(status: int | None, elapsed: float) -> None:
        with lock:
            if status is None:
                report.lost += 1
                return
            report.statuses[status] = report.statuses.get(status, 0) + 1
            report.latencies.append(elapsed)
            if 200 <= status < 300:
                report.accepted_latencies.append(elapsed)

    def worker() -> None:
        while True:
            task = next_task()
            if task is None:
                return
            endpoint, payload = task_request(task)
            if budget:
                payload["budget"] = budget
            body = json.dumps(payload).encode("utf-8")
            http_request = urllib.request.Request(
                base + endpoint, data=body,
                headers={"Content-Type": "application/json"},
                method="POST")
            started = time.perf_counter()
            try:
                with urllib.request.urlopen(
                        http_request, timeout=timeout_s) as response:
                    response.read()
                    record(response.status,
                           time.perf_counter() - started)
            except urllib.error.HTTPError as exc:
                exc.read()
                record(exc.code, time.perf_counter() - started)
            except (urllib.error.URLError, ConnectionError, OSError,
                    http.client.HTTPException):
                # HTTPException covers IncompleteRead: a reply torn
                # mid-body is a lost request, not a worker crash.
                record(None, time.perf_counter() - started)

    report.sent = requests
    threads = [threading.Thread(target=worker,
                                name=f"repro-loadgen-{index}")
               for index in range(max(1, concurrency))]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_s = time.perf_counter() - started
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Drive the seeded corpus through an xnf serve "
                    "instance and print a JSON load report.")
    parser.add_argument("url", help="base URL, e.g. http://127.0.0.1:8300")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--timeout", type=float, default=30.0)
    args = parser.parse_args(argv)
    report = run_load(args.url, requests=args.requests, seed=args.seed,
                      concurrency=args.concurrency,
                      timeout_s=args.timeout)
    json.dump(report.summary(), sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0 if report.lost == 0 else 1


if __name__ == "__main__":   # pragma: no cover - exercised in CI
    sys.exit(main())
