"""Bounded admission control for the normalization service.

The service runs on a thread-per-connection HTTP server, so without a
gate an overload melts into unbounded concurrency: every queued socket
gets a thread, every thread contends for the GIL, and tail latency
collapses for *all* callers.  :class:`AdmissionGate` bounds both
dimensions explicitly:

* at most ``max_inflight`` requests execute concurrently — the rest
  wait;
* at most ``max_queue`` requests wait — past that depth new arrivals
  are **shed** immediately (HTTP 429 + ``Retry-After``) instead of
  being queued into a latency cliff;
* a waiter that outlives ``queue_timeout_s`` is bounced (HTTP 503):
  a queue that old is a stall, and holding the socket longer only
  hides it;
* once :meth:`drain` flips the gate, new arrivals and current waiters
  are refused (HTTP 503) while the in-flight requests finish — the
  graceful-shutdown half of the contract.

Decisions are returned, not raised: the HTTP layer maps each
:class:`Decision` to its status/headers, and the counters
(``serve.admitted`` / ``serve.shed`` / ``serve.queue.timeout`` /
``serve.drain.refused``, plus ``serve.inflight`` / ``serve.queue.depth``
gauges) come from this module so every path is accounted exactly once.

Fault site ``serve.admission`` fires on every :meth:`admit` before any
state changes, so an injected fault never leaks a permit.
"""

from __future__ import annotations

import threading
import time
from enum import Enum

from repro.faults import plan as _faults
from repro.obs import metrics as _obs

_SITE_ADMISSION = _faults.register_site(
    "serve.admission", "serve",
    "request admission, before any queue/inflight accounting")


class Decision(Enum):
    """The outcome of one admission attempt."""

    ADMITTED = "admitted"
    SHED = "shed"              # queue already max_queue deep -> 429
    TIMEOUT = "timeout"        # waited queue_timeout_s -> 503
    DRAINING = "draining"      # shutdown in progress -> 503


class AdmissionGate:
    """Counting gate: ``max_inflight`` running, ``max_queue`` waiting.

    Thread-safe; one instance guards all endpoints of a server.  Use::

        decision = gate.admit()
        if decision is Decision.ADMITTED:
            try:
                ...handle...
            finally:
                gate.release()
    """

    def __init__(self, *, max_inflight: int = 8, max_queue: int = 64,
                 queue_timeout_s: float = 5.0,
                 clock=time.monotonic) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if queue_timeout_s <= 0:
            raise ValueError("queue_timeout_s must be positive")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout_s = queue_timeout_s
        self._clock = clock
        self._cond = threading.Condition()
        self._inflight = 0
        self._waiting = 0
        self._draining = False

    # -- introspection -------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._cond:
            return self._inflight

    @property
    def queue_depth(self) -> int:
        with self._cond:
            return self._waiting

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    # -- admission -----------------------------------------------------

    def admit(self) -> Decision:
        """Try to enter; may block up to ``queue_timeout_s``."""
        if _faults.active:
            _faults.fire(_SITE_ADMISSION)
        with self._cond:
            if self._draining:
                self._count("serve.drain.refused")
                return Decision.DRAINING
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._account()
                self._count("serve.admitted")
                return Decision.ADMITTED
            if self._waiting >= self.max_queue:
                self._count("serve.shed")
                return Decision.SHED
            self._waiting += 1
            self._account()
            deadline = self._clock() + self.queue_timeout_s
            try:
                while True:
                    if self._draining:
                        self._count("serve.drain.refused")
                        return Decision.DRAINING
                    if self._inflight < self.max_inflight:
                        self._inflight += 1
                        self._count("serve.admitted")
                        return Decision.ADMITTED
                    remaining = deadline - self._clock()
                    if remaining <= 0:
                        self._count("serve.queue.timeout")
                        return Decision.TIMEOUT
                    self._cond.wait(remaining)
            finally:
                self._waiting -= 1
                self._account()

    def release(self) -> None:
        """Leave the in-flight set (only after an ``ADMITTED``)."""
        with self._cond:
            self._inflight -= 1
            self._account()
            self._cond.notify_all()

    # -- drain ---------------------------------------------------------

    def drain(self, deadline_s: float) -> bool:
        """Refuse new work and wait for in-flight requests to finish.

        Returns ``True`` when the last in-flight request completed
        within ``deadline_s``, ``False`` when the deadline expired
        first (the caller decides whether to abandon them).
        Idempotent: a second call (mid-drain SIGTERM) just joins the
        same wait.
        """
        with self._cond:
            self._draining = True
            self._cond.notify_all()  # bounce the current waiters
            deadline = self._clock() + deadline_s
            while self._inflight > 0:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    # -- accounting ----------------------------------------------------

    def _account(self) -> None:
        # Callers hold the lock; gauges publish queue pressure for
        # /metrics scrapes mid-run.
        if _obs.enabled:
            _obs.set_gauge("serve.inflight", self._inflight)
            _obs.set_gauge("serve.queue.depth", self._waiting)

    @staticmethod
    def _count(name: str) -> None:
        if _obs.enabled:
            _obs.inc(name)
