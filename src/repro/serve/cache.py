"""An LRU cache of parsed specifications, keyed by content fingerprint.

A long-running service sees the same ``(DTD, Σ)`` pair across many
requests — the whole point of a warm daemon over the one-shot CLI.
Parsing the DTD, validating Σ, and (especially) re-deriving the
implication engine's internal state per request would throw that
warmth away.  :class:`SpecCache` keeps the most recently used
:class:`~repro.spec.XMLSpec` objects alive, keyed by the same sha-256
fingerprints the checkpoint/ledger layers already compute
(:func:`repro.obs.ledger.fingerprint`), so a cache key never depends
on whitespace-insignificant differences being equal — only on the
exact request text, root override, and engine choice.

Contract:

* builds happen **outside** the lock — a pathological DTD being parsed
  under a request budget must not block hits for other requests;
* a build that raises (including an injected fault at
  ``serve.cache.fill``) inserts **nothing** — the cache cannot be
  poisoned by failures, and the next identical request rebuilds from
  scratch;
* eviction is size-bounded LRU; ``serve.cache.hit`` /
  ``serve.cache.miss`` / ``serve.cache.evictions`` counters and a
  ``serve.cache.size`` gauge make the hit rate observable on
  ``/metrics``.

Two threads missing on the same key may both build; the second insert
wins and the first spec simply becomes garbage — acceptable duplicate
work, never an inconsistency, because specs are immutable once built.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable

from repro.faults import plan as _faults
from repro.obs import metrics as _obs
from repro.obs.ledger import fingerprint
from repro.spec import XMLSpec

_SITE_FILL = _faults.register_site(
    "serve.cache.fill", "serve",
    "spec-cache miss, before the DTD/Σ parse that would fill it")

#: A cache key: (dtd fingerprint, fds fingerprint, root, engine).
Key = tuple[str, str, str | None, str]


def spec_key(dtd_text: str, fds_text: str, *, root: str | None = None,
             engine: str = "auto") -> Key:
    """The fingerprint key identifying one parsed specification."""
    return (fingerprint(dtd_text), fingerprint(fds_text), root, engine)


class SpecCache:
    """Bounded LRU of parsed :class:`~repro.spec.XMLSpec` objects."""

    def __init__(self, *, capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: OrderedDict[Key, XMLSpec] = OrderedDict()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, dtd_text: str, fds_text: str, *,
            root: str | None = None, engine: str = "auto") -> XMLSpec:
        """The cached spec for these texts, building it on a miss.

        Raises whatever the parse raises (``ParseError``,
        ``FDSyntaxError``, an injected fault, ...) without inserting
        anything.
        """
        key = spec_key(dtd_text, fds_text, root=root, engine=engine)
        with self._lock:
            spec = self._entries.get(key)
            if spec is not None:
                self._entries.move_to_end(key)
                self._count("serve.cache.hit")
                return spec
        self._count("serve.cache.miss")
        if _faults.active:
            _faults.fire(_SITE_FILL)
        spec = XMLSpec.parse(dtd_text, fds_text, root=root, engine=engine)
        with self._lock:
            self._entries[key] = spec
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._count("serve.cache.evictions")
            if _obs.enabled:
                _obs.set_gauge("serve.cache.size", len(self._entries))
        return spec

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            if _obs.enabled:
                _obs.set_gauge("serve.cache.size", 0)

    @staticmethod
    def _count(name: str) -> None:
        if _obs.enabled:
            _obs.inc(name)
