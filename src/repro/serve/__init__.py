"""``repro.serve`` — the long-running normalization service.

The batch runtime is one-shot; production traffic is a daemon.  This
package turns the ``(D, Σ)`` pipeline into an HTTP/JSON service with
the robustness properties the CLI already guarantees per invocation,
re-established *per request*:

* :mod:`~repro.serve.admission` — bounded concurrency + queue with
  explicit load shedding (429/503) and graceful drain;
* :mod:`~repro.serve.cache` — fingerprint-keyed LRU of parsed specs,
  unpoisonable by failed builds;
* :mod:`~repro.serve.handlers` — pure endpoint logic under
  thread-scoped guard budgets, with a total exception→response map
  (only a non-``ReproError`` is a contract breach, and even that is
  counted and contained, never a dead thread);
* :mod:`~repro.serve.server` — the stdlib HTTP transport, one port for
  the API and ``/metrics`` / ``/healthz`` / ``/readyz``;
* :mod:`~repro.serve.loadgen` — the seeded corpus load generator that
  gives the throughput/tail-latency claims numbers.

See ``docs/SERVE.md`` for the wire contract.
"""

from repro.serve.admission import AdmissionGate, Decision
from repro.serve.cache import SpecCache, spec_key
from repro.serve.handlers import ENDPOINTS, BadRequest, BudgetDefaults, handle
from repro.serve.loadgen import LoadReport, run_load
from repro.serve.server import MAX_BODY_BYTES, NormalizationServer, account

__all__ = [
    "AdmissionGate",
    "BadRequest",
    "BudgetDefaults",
    "Decision",
    "ENDPOINTS",
    "LoadReport",
    "MAX_BODY_BYTES",
    "NormalizationServer",
    "SpecCache",
    "account",
    "handle",
    "run_load",
    "spec_key",
]
