"""Paths in DTDs and XML trees.

A path ``w1.w2. ... .wn`` starts at the root element type; every step
but the last is an element name, and the last step is an element name,
an attribute name (``@l``), or the reserved text symbol ``S``
(#PCDATA).  The textual syntax is dot-separated, exactly as in the
paper (``courses.course.@cno``).

:class:`Path` is immutable and hashable, so paths can be set members
and dict keys throughout the FD machinery.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterator

from repro.errors import InvalidPathError

#: Reserved step denoting #PCDATA content.
TEXT_STEP = "S"


@total_ordering
class Path:
    """An immutable path: a non-empty sequence of steps."""

    __slots__ = ("_steps", "_hash")

    def __init__(self, steps: tuple[str, ...] | list[str]) -> None:
        steps = tuple(steps)
        if not steps:
            raise InvalidPathError("a path must have at least one step")
        for index, step in enumerate(steps):
            if not step:
                raise InvalidPathError("path steps must be non-empty")
            if index < len(steps) - 1 and (step.startswith("@")
                                           or step == TEXT_STEP):
                raise InvalidPathError(
                    f"non-final step {step!r} must be an element name "
                    f"in path {'.'.join(steps)!r}")
        object.__setattr__(self, "_steps", steps)
        object.__setattr__(self, "_hash", hash(steps))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Path is immutable")

    # -- constructors ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Path":
        """Parse dot-separated syntax, e.g. ``courses.course.@cno``."""
        text = text.strip()
        if not text:
            raise InvalidPathError("empty path")
        return cls(tuple(part.strip() for part in text.split(".")))

    @classmethod
    def root(cls, element: str) -> "Path":
        """The length-one path consisting of the root element type."""
        return cls((element,))

    # -- accessors ---------------------------------------------------------

    @property
    def steps(self) -> tuple[str, ...]:
        return self._steps

    @property
    def last(self) -> str:
        """``last(p)``: the final step."""
        return self._steps[-1]

    @property
    def length(self) -> int:
        """``length(p)``: the number of steps."""
        return len(self._steps)

    @property
    def is_attribute(self) -> bool:
        """Whether the path ends in an attribute (``@l``)."""
        return self.last.startswith("@")

    @property
    def is_text(self) -> bool:
        """Whether the path ends in the text symbol ``S``."""
        return self.last == TEXT_STEP

    @property
    def is_element(self) -> bool:
        """Whether the path ends in an element type (an *EPath*)."""
        return not (self.is_attribute or self.is_text)

    @property
    def parent(self) -> "Path":
        """The path with the final step removed."""
        if len(self._steps) == 1:
            raise InvalidPathError(f"path {self} has no parent")
        return Path(self._steps[:-1])

    @property
    def element_prefix(self) -> "Path":
        """The longest element-path prefix: the path itself if it is an
        element path, otherwise its parent."""
        return self if self.is_element else self.parent

    def child(self, step: str) -> "Path":
        """Extend the path by one step."""
        if not self.is_element:
            raise InvalidPathError(
                f"cannot extend non-element path {self} with {step!r}")
        return Path(self._steps + (step,))

    def attribute(self, name: str) -> "Path":
        """Extend with an attribute step; ``name`` may omit the ``@``."""
        if not name.startswith("@"):
            name = "@" + name
        return self.child(name)

    @property
    def text(self) -> "Path":
        """Extend with the text step ``S``."""
        return self.child(TEXT_STEP)

    def prefixes(self, *, proper: bool = False) -> Iterator["Path"]:
        """All prefixes, shortest first; ``proper`` excludes the path
        itself."""
        end = len(self._steps) - (1 if proper else 0)
        for length in range(1, end + 1):
            yield Path(self._steps[:length])

    def is_prefix_of(self, other: "Path", *, proper: bool = False) -> bool:
        """Whether this path is a prefix of ``other``."""
        if len(self._steps) > len(other._steps):
            return False
        if proper and len(self._steps) == len(other._steps):
            return False
        return other._steps[:len(self._steps)] == self._steps

    def replace_prefix(self, old: "Path", new: "Path") -> "Path":
        """Rewrite a leading occurrence of ``old`` to ``new``."""
        if not old.is_prefix_of(self):
            raise InvalidPathError(f"{old} is not a prefix of {self}")
        return Path(new._steps + self._steps[len(old._steps):])

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self._steps == other._steps

    def __lt__(self, other: "Path") -> bool:
        if not isinstance(other, Path):
            return NotImplemented
        return self._steps < other._steps

    def __hash__(self) -> int:
        return self._hash

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self) -> Iterator[str]:
        return iter(self._steps)

    def __str__(self) -> str:
        return ".".join(self._steps)

    def __repr__(self) -> str:
        return f"Path({str(self)!r})"


def parse_paths(text: str) -> list[Path]:
    """Parse a comma-separated list of paths."""
    return [Path.parse(part) for part in text.split(",") if part.strip()]
