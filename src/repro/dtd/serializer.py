"""Serialization of DTDs back to ``<!ELEMENT>`` / ``<!ATTLIST>`` text."""

from __future__ import annotations

from repro.dtd.model import DTD
from repro.regex.ast import Epsilon, PCData, Regex


def serialize_content_model(production: Regex) -> str:
    """Render a content model in declaration syntax."""
    if isinstance(production, Epsilon):
        return "EMPTY"
    if isinstance(production, PCData):
        return "(#PCDATA)"
    rendered = production.to_dtd()
    if not rendered.startswith("("):
        rendered = f"({rendered})"
    return rendered


def serialize_dtd(dtd: DTD, *, declared_order: bool = True) -> str:
    """Serialize a DTD; the root element is always emitted first.

    ``declared_order`` keeps the remaining elements in insertion order
    (matching how the DTD was built); otherwise they are sorted.
    """
    names = [name for name in dtd.productions if name != dtd.root]
    if not declared_order:
        names.sort()
    lines: list[str] = []
    for name in [dtd.root, *names]:
        model = serialize_content_model(dtd.content(name))
        lines.append(f"<!ELEMENT {name} {model}>")
        attrs = sorted(dtd.attrs(name))
        if attrs:
            body = "\n".join(
                f"    {attr[1:]} CDATA #REQUIRED" for attr in attrs)
            lines.append(f"<!ATTLIST {name}\n{body}>")
    return "\n".join(lines) + "\n"
