"""DTDs (Document Type Definitions) — Definition 1 of the paper.

A DTD is a tuple ``D = (E, A, P, R, r)``: element types, attributes,
content-model productions, per-element attribute sets, and a root
element type.  This package provides the model, a parser and serializer
for standard ``<!ELEMENT>`` / ``<!ATTLIST>`` syntax, path enumeration
(``paths(D)``, ``EPaths(D)``), and the Section 7 classification of DTDs
(simple, disjunctive) with the disjunction measure ``N_D``.
"""

from repro.dtd.paths import Path
from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.dtd.serializer import serialize_dtd
from repro.dtd.classify import (
    disjunction_measure,
    is_disjunctive_dtd,
    is_simple_dtd,
)

__all__ = [
    "Path", "DTD", "parse_dtd", "serialize_dtd",
    "is_simple_dtd", "is_disjunctive_dtd", "disjunction_measure",
]
