"""Parser for DTD text (``<!ELEMENT ...>`` / ``<!ATTLIST ...>``).

Supports the fragment used throughout the paper:

* ``<!ELEMENT name content>`` with content ``EMPTY``, ``(#PCDATA)`` or a
  regular expression over element names;
* ``<!ATTLIST name (attr TYPE DEFAULT)+>`` — attribute types (``CDATA``,
  ``ID``, ...) and defaults (``#REQUIRED``, ``#IMPLIED``) are accepted
  syntactically, but the paper's model (Definition 3) treats every
  declared attribute as required, so they do not affect semantics;
* XML comments (``<!-- ... -->``) anywhere between declarations.

By default the root element type is the first declared element; pass
``root=`` to override.

Every :class:`~repro.errors.DTDSyntaxError` carries the 1-based line
and column of the offending construct in the *original* input
(comments are blanked out offset-preservingly, never collapsed), so
CLI diagnostics point at real source positions.
"""

from __future__ import annotations

import re

from repro.errors import DTDSyntaxError, RegexSyntaxError
from repro.dtd.model import DTD
from repro.faults import plan as _faults
from repro.regex.parser import parse_content_model

_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_DECL_RE = re.compile(r"<!\s*(ELEMENT|ATTLIST)\s+(.*?)>", re.DOTALL)
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.:-]*")

_ATT_TYPES = {"CDATA", "ID", "IDREF", "IDREFS", "NMTOKEN", "NMTOKENS",
              "ENTITY", "ENTITIES", "NOTATION"}
_ATT_DEFAULTS = {"#REQUIRED", "#IMPLIED", "#FIXED"}

_SITE_INPUT = _faults.register_site(
    "dtd.parser.input", "dtd",
    "DTD text entering parse_dtd (truncatable)",
    kinds=_faults.INPUT_KINDS)
_SITE_DECL = _faults.register_site(
    "dtd.parser.decl", "dtd",
    "each <!ELEMENT>/<!ATTLIST> declaration being processed")


def _blank(match: re.Match[str]) -> str:
    """Replace a span with spaces, keeping newlines (offsets survive)."""
    return re.sub(r"[^\n]", " ", match.group())


def _position(text: str, offset: int) -> tuple[int, int]:
    """1-based ``(line, column)`` of ``offset`` in ``text``."""
    offset = max(0, min(offset, len(text)))
    line = text.count("\n", 0, offset) + 1
    column = offset - (text.rfind("\n", 0, offset) + 1) + 1
    return line, column


def parse_dtd(text: str, *, root: str | None = None) -> DTD:
    """Parse DTD text into a :class:`~repro.dtd.model.DTD`.

    >>> dtd = parse_dtd('''
    ...   <!ELEMENT db (G*)>
    ...   <!ELEMENT G EMPTY>
    ...   <!ATTLIST G A CDATA #REQUIRED B CDATA #REQUIRED>
    ... ''')
    >>> sorted(dtd.attrs("G"))
    ['@A', '@B']
    """
    if _faults.active:
        text = _faults.mangle(_SITE_INPUT, text)
    cleaned = _COMMENT_RE.sub(_blank, text)

    def fail(message: str, offset: int) -> DTDSyntaxError:
        line, column = _position(cleaned, offset)
        return DTDSyntaxError(message, line=line, column=column)

    blanked = _DECL_RE.sub(_blank, cleaned)
    stray = next((i for i, ch in enumerate(blanked) if not ch.isspace()),
                 None)
    if stray is not None:
        snippet = blanked[stray:].split("\n")[0][:60].rstrip()
        raise fail(
            f"unrecognized content outside declarations: {snippet!r}",
            stray)

    elements: dict[str, tuple[str, int]] = {}   # name -> (model, offset)
    attlists: dict[str, list[str]] = {}
    order: list[str] = []

    for match in _DECL_RE.finditer(cleaned):
        if _faults.active:
            _faults.fire(_SITE_DECL)
        kind, body = match.group(1), match.group(2)
        body_start = match.start(2)
        lead = len(body) - len(body.lstrip())
        body = body.strip()
        body_start += lead
        name_match = _NAME_RE.match(body)
        if name_match is None:
            raise fail(f"missing element name in <!{kind} ...>",
                       body_start)
        name = name_match.group()
        rest_raw = body[name_match.end():]
        rest_lead = len(rest_raw) - len(rest_raw.lstrip())
        rest = rest_raw.strip()
        rest_start = body_start + name_match.end() + rest_lead
        if kind == "ELEMENT":
            if name in elements:
                raise fail(
                    f"duplicate <!ELEMENT> declaration for {name!r}",
                    body_start)
            if not rest:
                raise fail(
                    f"<!ELEMENT {name}> is missing a content model",
                    body_start)
            elements[name] = (rest, rest_start)
            order.append(name)
        else:
            attlists.setdefault(name, []).extend(
                _parse_attlist(name, rest, rest_start, fail))

    if not elements:
        raise DTDSyntaxError("no <!ELEMENT> declarations found")
    root_name = root if root is not None else order[0]
    if root_name not in elements:
        raise DTDSyntaxError(f"root element type {root_name!r} not declared")

    productions = {}
    for name, (model, model_start) in elements.items():
        try:
            productions[name] = parse_content_model(model)
        except RegexSyntaxError as error:
            # Re-raise with the owning element named and the position
            # mapped into the full DTD text; the depth cap in the
            # content-model parser guarantees deeply nested inputs land
            # here as a ParseError, never as a raw RecursionError.
            offset = model_start + (error.column - 1
                                    if error.column is not None else 0)
            line, column = _position(cleaned, offset)
            raise DTDSyntaxError(
                f"in content model of <!ELEMENT {name}>: {error}",
                line=line, column=column) from error
    return DTD(root=root_name, productions=productions,
               attributes={name: frozenset("@" + a for a in attrs)
                           for name, attrs in attlists.items()})


def _parse_attlist(element: str, body: str, body_start: int,
                   fail) -> list[str]:
    """Parse the attribute definitions of one ``<!ATTLIST>`` body."""
    tokens = [(m.group(), body_start + m.start())
              for m in re.finditer(r"\S+", body)]
    attrs: list[str] = []
    index = 0
    while index < len(tokens):
        name, name_at = tokens[index]
        if not _NAME_RE.fullmatch(name):
            raise fail(
                f"invalid attribute name {name!r} in ATTLIST of "
                f"{element!r}", name_at)
        index += 1
        if index >= len(tokens) or tokens[index][0] not in _ATT_TYPES:
            found, at = (tokens[index] if index < len(tokens)
                         else ("<end>", name_at))
            raise fail(
                f"expected attribute type after {name!r} in ATTLIST of "
                f"{element!r}, found {found!r}", at)
        index += 1
        if index >= len(tokens) or tokens[index][0] not in _ATT_DEFAULTS:
            found, at = (tokens[index] if index < len(tokens)
                         else ("<end>", name_at))
            raise fail(
                f"expected attribute default after {name!r} in ATTLIST "
                f"of {element!r}, found {found!r}", at)
        if tokens[index][0] == "#FIXED":
            index += 1  # skip the fixed value token
            if index >= len(tokens):
                raise fail(
                    f"#FIXED attribute {name!r} of {element!r} "
                    "is missing its value", name_at)
        index += 1
        attrs.append(name)
    return attrs
