"""Parser for DTD text (``<!ELEMENT ...>`` / ``<!ATTLIST ...>``).

Supports the fragment used throughout the paper:

* ``<!ELEMENT name content>`` with content ``EMPTY``, ``(#PCDATA)`` or a
  regular expression over element names;
* ``<!ATTLIST name (attr TYPE DEFAULT)+>`` — attribute types (``CDATA``,
  ``ID``, ...) and defaults (``#REQUIRED``, ``#IMPLIED``) are accepted
  syntactically, but the paper's model (Definition 3) treats every
  declared attribute as required, so they do not affect semantics;
* XML comments (``<!-- ... -->``) anywhere between declarations.

By default the root element type is the first declared element; pass
``root=`` to override.
"""

from __future__ import annotations

import re

from repro.errors import DTDSyntaxError, RegexSyntaxError
from repro.dtd.model import DTD
from repro.regex.parser import parse_content_model

_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_DECL_RE = re.compile(r"<!\s*(ELEMENT|ATTLIST)\s+(.*?)>", re.DOTALL)
_NAME_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_.:-]*")

_ATT_TYPES = {"CDATA", "ID", "IDREF", "IDREFS", "NMTOKEN", "NMTOKENS",
              "ENTITY", "ENTITIES", "NOTATION"}
_ATT_DEFAULTS = {"#REQUIRED", "#IMPLIED", "#FIXED"}


def parse_dtd(text: str, *, root: str | None = None) -> DTD:
    """Parse DTD text into a :class:`~repro.dtd.model.DTD`.

    >>> dtd = parse_dtd('''
    ...   <!ELEMENT db (G*)>
    ...   <!ELEMENT G EMPTY>
    ...   <!ATTLIST G A CDATA #REQUIRED B CDATA #REQUIRED>
    ... ''')
    >>> sorted(dtd.attrs("G"))
    ['@A', '@B']
    """
    cleaned = _COMMENT_RE.sub(" ", text)
    remainder = _DECL_RE.sub(" ", cleaned).strip()
    if remainder:
        snippet = remainder.split("\n")[0][:60]
        raise DTDSyntaxError(
            f"unrecognized content outside declarations: {snippet!r}")

    elements: dict[str, str] = {}
    attlists: dict[str, list[str]] = {}
    order: list[str] = []

    for match in _DECL_RE.finditer(cleaned):
        kind, body = match.group(1), match.group(2).strip()
        name_match = _NAME_RE.match(body)
        if name_match is None:
            raise DTDSyntaxError(f"missing element name in <!{kind} ...>")
        name = name_match.group()
        rest = body[name_match.end():].strip()
        if kind == "ELEMENT":
            if name in elements:
                raise DTDSyntaxError(
                    f"duplicate <!ELEMENT> declaration for {name!r}")
            if not rest:
                raise DTDSyntaxError(
                    f"<!ELEMENT {name}> is missing a content model")
            elements[name] = rest
            order.append(name)
        else:
            attlists.setdefault(name, []).extend(_parse_attlist(name, rest))

    if not elements:
        raise DTDSyntaxError("no <!ELEMENT> declarations found")
    root_name = root if root is not None else order[0]
    if root_name not in elements:
        raise DTDSyntaxError(f"root element type {root_name!r} not declared")

    productions = {}
    for name, model in elements.items():
        try:
            productions[name] = parse_content_model(model)
        except RegexSyntaxError as error:
            # Re-raise with the owning element named; the depth cap in
            # the content-model parser guarantees deeply nested inputs
            # land here as a ParseError, never as a raw RecursionError.
            raise DTDSyntaxError(
                f"in content model of <!ELEMENT {name}>: {error}") \
                from error
    return DTD(root=root_name, productions=productions,
               attributes={name: frozenset("@" + a for a in attrs)
                           for name, attrs in attlists.items()})


def _parse_attlist(element: str, body: str) -> list[str]:
    """Parse the attribute definitions of one ``<!ATTLIST>`` body."""
    tokens = body.split()
    attrs: list[str] = []
    index = 0
    while index < len(tokens):
        name = tokens[index]
        if not _NAME_RE.fullmatch(name):
            raise DTDSyntaxError(
                f"invalid attribute name {name!r} in ATTLIST of {element!r}")
        index += 1
        if index >= len(tokens) or tokens[index] not in _ATT_TYPES:
            found = tokens[index] if index < len(tokens) else "<end>"
            raise DTDSyntaxError(
                f"expected attribute type after {name!r} in ATTLIST of "
                f"{element!r}, found {found!r}")
        index += 1
        if index >= len(tokens) or tokens[index] not in _ATT_DEFAULTS:
            found = tokens[index] if index < len(tokens) else "<end>"
            raise DTDSyntaxError(
                f"expected attribute default after {name!r} in ATTLIST of "
                f"{element!r}, found {found!r}")
        if tokens[index] == "#FIXED":
            index += 1  # skip the fixed value token
            if index >= len(tokens):
                raise DTDSyntaxError(
                    f"#FIXED attribute {name!r} of {element!r} "
                    "is missing its value")
        index += 1
        attrs.append(name)
    return attrs
