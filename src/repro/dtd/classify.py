"""Section 7 classification of whole DTDs.

* A DTD is **simple** if every (reachable) production uses a simple
  regular expression over ``E ∪ {S}`` — the prevalent case in practice
  (the paper demonstrates this on the ebXML Business Process
  Specification Schema, Figure 5).
* A DTD is **disjunctive** if every production is a concatenation of
  simple regexes and simple disjunctions over pairwise-disjoint
  alphabets; this strictly generalizes simple DTDs.
* ``N_D`` measures the number of unrestricted-disjunction choices; FD
  implication is polynomial when ``N_D <= k * log |D|`` (Theorem 4) and
  coNP-complete for unbounded disjunctive DTDs (Theorem 5).
"""

from __future__ import annotations

from repro.errors import RecursionLimitError, ReproError
from repro.dtd.model import DTD
from repro.regex.ast import PCData
from repro.regex.classify import (
    disjunction_measure as _regex_measure,
    is_disjunctive_production,
    is_simple,
)


def is_simple_dtd(dtd: DTD, *, reachable_only: bool = True) -> bool:
    """Whether every production uses a simple regular expression."""
    elements = dtd.reachable_types if reachable_only else dtd.element_types
    return all(
        isinstance(dtd.content(element), PCData)
        or is_simple(dtd.content(element))
        for element in elements)


def is_disjunctive_dtd(dtd: DTD, *, reachable_only: bool = True) -> bool:
    """Whether every production is a disjunctive production."""
    elements = dtd.reachable_types if reachable_only else dtd.element_types
    return all(
        isinstance(dtd.content(element), PCData)
        or is_disjunctive_production(dtd.content(element))
        for element in elements)


def dtd_size(dtd: DTD) -> int:
    """``|D|``: the length of the serialized DTD, the size measure used
    by the Theorem 4 bound."""
    from repro.dtd.serializer import serialize_dtd
    return len(serialize_dtd(dtd))


def disjunction_measure(dtd: DTD) -> int:
    """The measure ``N_D`` of Section 7.

    For each element type ``tau``: ``N_tau = 1`` if ``P(tau)`` is a
    simple regex, and otherwise ``|{p in paths(D) : last(p) = tau}|``
    times the product of the per-factor measures.  ``N_D`` is the
    product of all ``N_tau``.  Requires a non-recursive DTD (the path
    counts must be finite).
    """
    if dtd.is_recursive:
        raise RecursionLimitError(
            "N_D is defined via paths(D), which is infinite for a "
            "recursive DTD")
    if not is_disjunctive_dtd(dtd):
        raise ReproError("N_D is only defined for disjunctive DTDs")
    path_counts: dict[str, int] = {}
    for path in dtd.paths:
        if path.is_element:
            path_counts[path.last] = path_counts.get(path.last, 0) + 1
    measure = 1
    for element in dtd.reachable_types:
        production = dtd.content(element)
        if isinstance(production, PCData) or is_simple(production):
            continue
        measure *= path_counts.get(element, 0) * _regex_measure(production)
    return measure
