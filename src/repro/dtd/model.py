"""The DTD model ``D = (E, A, P, R, r)`` — Definition 1.

* ``E`` — element types (here: every key of ``productions``),
* ``A`` — attribute names (derived: the union of ``attributes`` values),
* ``P`` — productions: element type -> content model (a
  :class:`~repro.regex.ast.Regex`; ``EPSILON`` encodes ``EMPTY`` and
  ``PCDATA`` encodes ``#PCDATA``),
* ``R`` — attribute sets: element type -> frozenset of ``@``-names,
* ``r`` — the root element type, which (wlog, as in the paper) must not
  occur in any production.

Instances are immutable; the transformation methods used by the
normalization algorithm return new DTDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Mapping

from repro.errors import InvalidDTDError, RecursionLimitError
from repro.regex.analysis import Multiplicity, symbol_multiplicities
from repro.regex.ast import EPSILON, PCData, Regex
from repro.regex.parser import parse_content_model
from repro.dtd.paths import TEXT_STEP, Path

#: Default bound for path enumeration over recursive DTDs.
DEFAULT_DEPTH_LIMIT = 12


@dataclass(frozen=True, eq=False)
class DTD:
    """An immutable DTD per Definition 1 of the paper.

    Equality is structural on ``(r, P, R)`` (``E`` and ``A`` are derived
    and element types without declared attributes compare equal to ones
    with an empty attribute set).
    """

    root: str
    productions: Mapping[str, Regex]
    attributes: Mapping[str, frozenset[str]] = field(default_factory=dict)

    def _key(self) -> tuple:
        attributes = tuple(sorted(
            (element, tuple(sorted(attrs)))
            for element, attrs in self.attributes.items() if attrs))
        productions = tuple(sorted(self.productions.items(),
                                   key=lambda item: item[0]))
        return (self.root, productions, attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DTD):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __post_init__(self) -> None:
        productions = dict(self.productions)
        attributes = {
            element: frozenset(attrs)
            for element, attrs in self.attributes.items()
        }
        object.__setattr__(self, "productions", productions)
        object.__setattr__(self, "attributes", attributes)
        self._validate()

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, root: str, elements: Mapping[str, str | Regex],
              attlists: Mapping[str, Iterable[str]] | None = None) -> "DTD":
        """Convenience constructor from textual content models.

        >>> DTD.build("db", {"db": "(G*)", "G": "EMPTY"},
        ...           {"G": ["A", "B"]})  # doctest: +ELLIPSIS
        DTD(root='db', ...)
        """
        productions = {
            name: (parse_content_model(model)
                   if isinstance(model, str) else model)
            for name, model in elements.items()
        }
        attributes = {
            name: frozenset(
                attr if attr.startswith("@") else "@" + attr
                for attr in attrs)
            for name, attrs in (attlists or {}).items()
        }
        return cls(root=root, productions=productions, attributes=attributes)

    def _validate(self) -> None:
        if self.root not in self.productions:
            raise InvalidDTDError(
                f"root element type {self.root!r} has no production")
        for element, production in self.productions.items():
            if element == TEXT_STEP:
                raise InvalidDTDError(
                    f"element type name {TEXT_STEP!r} is reserved")
            if element.startswith("@"):
                raise InvalidDTDError(
                    f"element type name {element!r} may not start with '@'")
            alphabet = production.alphabet()
            if isinstance(production, PCData):
                alphabet = frozenset()
            elif TEXT_STEP in alphabet:
                raise InvalidDTDError(
                    f"mixed content in {element!r}: #PCDATA may only be "
                    "the entire content model (Definition 1)")
            for symbol in alphabet:
                if symbol not in self.productions:
                    raise InvalidDTDError(
                        f"production of {element!r} mentions undeclared "
                        f"element type {symbol!r}")
            if self.root in alphabet:
                raise InvalidDTDError(
                    f"root element type {self.root!r} occurs in the "
                    f"production of {element!r} (Definition 1 forbids this)")
        for element, attrs in self.attributes.items():
            if element not in self.productions:
                raise InvalidDTDError(
                    f"ATTLIST for undeclared element type {element!r}")
            for attr in attrs:
                if not attr.startswith("@"):
                    raise InvalidDTDError(
                        f"attribute name {attr!r} must start with '@'")

    # -- basic accessors ---------------------------------------------------

    @property
    def element_types(self) -> frozenset[str]:
        """``E``: the declared element types."""
        return frozenset(self.productions)

    @property
    def attribute_names(self) -> frozenset[str]:
        """``A``: all attribute names used anywhere."""
        return frozenset().union(
            *self.attributes.values()) if self.attributes else frozenset()

    def content(self, element: str) -> Regex:
        """``P(element)``."""
        try:
            return self.productions[element]
        except KeyError:
            raise InvalidDTDError(
                f"unknown element type {element!r}") from None

    def attrs(self, element: str) -> frozenset[str]:
        """``R(element)`` (empty if none declared)."""
        if element not in self.productions:
            raise InvalidDTDError(f"unknown element type {element!r}")
        return self.attributes.get(element, frozenset())

    def has_text(self, element: str) -> bool:
        """Whether ``P(element) = S`` (#PCDATA)."""
        return isinstance(self.content(element), PCData)

    def child_element_types(self, element: str) -> frozenset[str]:
        """Element types that may occur as children of ``element``."""
        production = self.content(element)
        if isinstance(production, PCData):
            return frozenset()
        return production.alphabet()

    # -- recursion & reachability -------------------------------------------

    @cached_property
    def reachable_types(self) -> frozenset[str]:
        """Element types reachable from the root."""
        seen = {self.root}
        frontier = [self.root]
        while frontier:
            element = frontier.pop()
            for child in self.child_element_types(element):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return frozenset(seen)

    @cached_property
    def is_recursive(self) -> bool:
        """Whether ``paths(D)`` is infinite (a reachable cycle exists)."""
        colors: dict[str, int] = {}

        def visit(element: str) -> bool:
            colors[element] = 1
            for child in self.child_element_types(element):
                state = colors.get(child, 0)
                if state == 1:
                    return True
                if state == 0 and visit(child):
                    return True
            colors[element] = 2
            return False

        return visit(self.root)

    # -- paths ---------------------------------------------------------------

    def iter_paths(self, max_depth: int | None = None) -> Iterator[Path]:
        """Enumerate ``paths(D)`` in breadth-first order.

        For recursive DTDs a ``max_depth`` (number of steps) bound is
        required; without one enumeration would not terminate.
        """
        if max_depth is None and self.is_recursive:
            raise RecursionLimitError(
                "paths(D) is infinite for a recursive DTD; "
                "pass max_depth to bound the enumeration")
        frontier: list[Path] = [Path.root(self.root)]
        while frontier:
            next_frontier: list[Path] = []
            for path in frontier:
                yield path
                element = path.last
                for attr in sorted(self.attrs(element)):
                    yield path.child(attr)
                if self.has_text(element):
                    yield path.child(TEXT_STEP)
                if max_depth is not None and path.length >= max_depth:
                    continue
                for child in sorted(self.child_element_types(element)):
                    next_frontier.append(path.child(child))
            frontier = next_frontier

    @cached_property
    def paths(self) -> frozenset[Path]:
        """``paths(D)`` for a non-recursive DTD (cached)."""
        return frozenset(self.iter_paths())

    @cached_property
    def epaths(self) -> frozenset[Path]:
        """``EPaths(D)``: paths ending in an element type."""
        return frozenset(p for p in self.paths if p.is_element)

    def is_path(self, path: Path) -> bool:
        """Whether ``path`` is in ``paths(D)`` (works for recursive DTDs
        without enumerating)."""
        if path.steps[0] != self.root:
            return False
        for index in range(1, len(path.steps)):
            parent = path.steps[index - 1]
            step = path.steps[index]
            if parent not in self.productions:
                return False
            if step.startswith("@"):
                return (index == len(path.steps) - 1
                        and step in self.attrs(parent))
            if step == TEXT_STEP:
                return (index == len(path.steps) - 1
                        and self.has_text(parent))
            if step not in self.child_element_types(parent):
                return False
        return True

    def check_path(self, path: Path) -> Path:
        """Validate membership in ``paths(D)``, returning the path."""
        if not self.is_path(path):
            from repro.errors import InvalidPathError
            raise InvalidPathError(f"{path} is not a path of this DTD")
        return path

    # -- multiplicities -------------------------------------------------------

    def child_multiplicity(self, element: str, child: str) -> Multiplicity:
        """Occurrence class of ``child`` in ``P(element)``.

        For non-simple productions the exact class may not exist; we
        then return the sound coarsening by exact occurrence bounds
        (``PLUS`` if forced, else ``STAR``), which is all the FD engines
        rely on (forcedness and at-most-one-ness).
        """
        production = self.content(element)
        classes = symbol_multiplicities(production)
        cls = classes.get(child)
        if cls is not None:
            return cls
        from repro.regex.analysis import occurrence_bounds
        low, high = occurrence_bounds(production, child)
        if high == 0:
            return Multiplicity.ZERO
        if low >= 1:
            return Multiplicity.PLUS if high > 1 else Multiplicity.ONE
        return Multiplicity.STAR if high > 1 else Multiplicity.OPT

    def path_multiplicity(self, path: Path) -> Multiplicity:
        """Occurrence class of the final step of an element path below
        its parent; the root has multiplicity ``ONE``."""
        if path.length == 1:
            return Multiplicity.ONE
        return self.child_multiplicity(path.parent.last, path.last)

    # -- misc -----------------------------------------------------------------

    def fresh_element_name(self, base: str) -> str:
        """An element-type name not in ``E``, derived from ``base``."""
        if base not in self.productions:
            return base
        index = 1
        while f"{base}{index}" in self.productions:
            index += 1
        return f"{base}{index}"

    def fresh_attribute_name(self, element: str, base: str) -> str:
        """An attribute name not in ``R(element)``, derived from ``base``."""
        if not base.startswith("@"):
            base = "@" + base
        if base not in self.attrs(element):
            return base
        index = 1
        while f"{base}{index}" in self.attrs(element):
            index += 1
        return f"{base}{index}"

    def __str__(self) -> str:
        from repro.dtd.serializer import serialize_dtd
        return serialize_dtd(self)
