"""Deterministic fault injection for the whole pipeline.

See :mod:`repro.faults.plan` for the design and
``docs/ROBUSTNESS.md`` for the site registry and the exception-safety
contract the injected faults enforce.

Usage::

    from repro import faults

    with faults.inject("fd.chase.step", kind="allocation", after=2):
        spec.normalize()          # raises InjectedAllocationFailure

    for site in faults.all_sites():
        ...                       # sweep the registry (chaos suite)
"""

from __future__ import annotations

from repro.faults import plan
from repro.faults.plan import (
    FaultArm,
    FaultPlan,
    FaultSite,
    INPUT_KINDS,
    RAISE_KINDS,
    all_sites,
    current,
    fire,
    inject,
    mangle,
    plan_from_spec,
    register_site,
    registered_sites,
    teardown,
    use,
)

__all__ = [
    "plan",
    "FaultArm",
    "FaultPlan",
    "FaultSite",
    "INPUT_KINDS",
    "RAISE_KINDS",
    "all_sites",
    "current",
    "fire",
    "inject",
    "mangle",
    "plan_from_spec",
    "register_site",
    "registered_sites",
    "teardown",
    "use",
]


def __getattr__(name: str):
    # ``faults.active`` must always reflect the live module flag (it is
    # rebound on install/teardown), so forward instead of re-exporting.
    if name == "active":
        return plan.active
    raise AttributeError(name)
