"""Deterministic fault injection: seeded plans firing typed faults.

Chaos-style testing (FoundationDB's deterministic simulation is the
canonical example) only works when a failure can be *replayed*: the
same seed and the same plan must produce the same fault at the same
point of the same run.  This module provides that substrate for the
whole pipeline:

* **Sites** — named instrumentation points (``fd.chase.step``,
  ``xml.parser.input``, ...) registered at import time by the modules
  that host them.  :func:`registered_sites` lists what the current
  process has seen; :func:`all_sites` imports every instrumented module
  first, so test sweeps cover the full registry.
* **Faults** — typed, and all of them :class:`~repro.errors.ReproError`
  subclasses (or inputs that lead to one), so the exception-safety
  contract is testable end to end:

  - ``"exception"`` — raise :class:`~repro.errors.InjectedFault`;
  - ``"allocation"`` — raise
    :class:`~repro.errors.InjectedAllocationFailure` (also a
    ``MemoryError``: simulated allocation failure);
  - ``"exhaustion"`` — raise :class:`~repro.errors.ResourceExhausted`
    with ``limit="injected"`` (the guard's degradation paths fire
    without waiting for a real deadline);
  - ``"truncate"`` — only at *input* sites: deterministically truncate
    the text being parsed (the parser then either fails with a
    :class:`~repro.errors.ParseError` or parses a valid prefix — both
    acceptable outcomes under the contract).

* **Plans** — a :class:`FaultPlan` is a list of :class:`FaultArm` s,
  each matching a site (``fnmatch`` patterns allowed) and firing on a
  specific hit count.  Plans install ambiently (mirroring
  :mod:`repro.guard.budget`) so engine signatures stay unchanged::

      from repro import faults

      with faults.inject("fd.chase.step", kind="exception", after=3):
          engine.implies(fd)        # raises InjectedFault on hit 4

Hot-path contract (same as obs and guard): while no plan is installed,
an instrumented site performs one module-attribute read
(``faults.active``) and nothing else; ``benchmarks/bench_guard.py``
keeps the combined disabled overhead under 1%.

When :mod:`repro.obs` is enabled every fired fault increments
``faults.injected`` and ``faults.injected.<kind>``.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Iterator

from repro.errors import (
    FaultError,
    InjectedAllocationFailure,
    InjectedFault,
    ReproError,
    ResourceExhausted,
)
from repro.obs import metrics as _obs

#: Fast-path flag: ``True`` iff at least one fault plan is installed.
#: Instrumented sites read this (one module-attribute load) before
#: touching anything else, so fault-free runs pay essentially nothing.
active: bool = False

_stack: list["FaultPlan"] = []

#: Fault kinds that raise (valid at every site).
RAISE_KINDS = ("exception", "allocation", "exhaustion")

#: Fault kinds valid only at input sites (:func:`mangle`).
INPUT_KINDS = RAISE_KINDS + ("truncate",)


@dataclass(frozen=True)
class FaultSite:
    """One named instrumentation point."""

    name: str
    subsystem: str
    description: str
    kinds: tuple[str, ...] = RAISE_KINDS


_REGISTRY: dict[str, FaultSite] = {}

#: The modules hosting fault sites; :func:`all_sites` imports them so a
#: sweep sees the full registry even in a fresh process.
_INSTRUMENTED_MODULES = (
    "repro.dtd.parser",
    "repro.xmltree.parser",
    "repro.regex.matching",
    "repro.fd.chase",
    "repro.fd.closure",
    "repro.tuples.extract",
    "repro.normalize.algorithm",
    "repro.normalize.checkpoint",
    "repro.runtime.journal",
    "repro.serve.admission",
    "repro.serve.cache",
    "repro.serve.handlers",
)


def register_site(name: str, subsystem: str, description: str, *,
                  kinds: tuple[str, ...] = RAISE_KINDS) -> str:
    """Register an instrumentation point (idempotent); returns ``name``.

    Called at import time by instrumented modules, next to where the
    site's :func:`fire` / :func:`mangle` call lives.
    """
    existing = _REGISTRY.get(name)
    if existing is None:
        _REGISTRY[name] = FaultSite(name=name, subsystem=subsystem,
                                    description=description, kinds=kinds)
    return name


def registered_sites() -> tuple[FaultSite, ...]:
    """Every site registered so far, sorted by name."""
    return tuple(sorted(_REGISTRY.values(), key=lambda s: s.name))


def all_sites() -> tuple[FaultSite, ...]:
    """Every site of the full pipeline (imports the instrumented
    modules first so the registry is complete)."""
    import importlib

    for module in _INSTRUMENTED_MODULES:
        importlib.import_module(module)
    return registered_sites()


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------

@dataclass
class FaultArm:
    """One planned fault: fire ``kind`` at the ``after``-th hit (0-based)
    of any site matching ``site`` (an ``fnmatch`` pattern)."""

    site: str
    kind: str = "exception"
    after: int = 0
    #: Set once the arm has fired; a fired arm never fires again.
    fired: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in INPUT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(INPUT_KINDS)}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")


class FaultPlan:
    """A deterministic schedule of faults.

    ``seed`` parameterizes data-dependent choices (currently the
    truncation offset); everything else is a pure function of the hit
    sequence, so a plan replays identically on identical executions.
    ``fired`` logs every fault the plan actually delivered as
    ``(site, kind)`` pairs — test harnesses assert on it to distinguish
    "survived the fault" from "never reached the site".
    """

    def __init__(self, arms: Iterable[FaultArm], *, seed: int = 0) -> None:
        self.arms = list(arms)
        self.seed = seed
        self.hits: dict[str, int] = {}
        self.fired: list[tuple[str, str]] = []

    def _match(self, site: str) -> FaultArm | None:
        """Record a hit of ``site``; return the arm due to fire, if any."""
        count = self.hits.get(site, 0)
        self.hits[site] = count + 1
        for arm in self.arms:
            if arm.fired:
                continue
            if fnmatchcase(site, arm.site) and count >= arm.after:
                arm.fired = True
                return arm
        return None

    def _record(self, site: str, kind: str) -> None:
        self.fired.append((site, kind))
        if _obs.enabled:
            _obs.inc("faults.injected")
            _obs.inc(f"faults.injected.{kind}")

    def _raise(self, site: str, kind: str) -> None:
        self._record(site, kind)
        if kind == "allocation":
            raise InjectedAllocationFailure(site, kind)
        if kind == "exhaustion":
            raise ResourceExhausted(
                "injected", partial={"site": site, "engine": "faults"})
        raise InjectedFault(site, kind)


# ---------------------------------------------------------------------------
# Instrumentation entry points
# ---------------------------------------------------------------------------

def current() -> FaultPlan | None:
    """The innermost installed plan, or ``None``."""
    return _stack[-1] if _stack else None


def fire(site: str) -> None:
    """Hit a raise-only site: raise the planned fault, if one is due.

    Call sites guard this behind ``if faults.active:`` so disabled runs
    pay one attribute read only.  A planned ``"truncate"`` arm matching
    a raise-only site degrades to ``"exception"`` (truncation has no
    meaning without an input string).
    """
    plan = current()
    if plan is None:
        return
    arm = plan._match(site)
    if arm is None:
        return
    kind = "exception" if arm.kind == "truncate" else arm.kind
    plan._raise(site, kind)


def mangle(site: str, text: str) -> str:
    """Hit an input site: truncate ``text`` or raise, per the plan.

    The truncation offset is drawn from ``random.Random`` seeded with
    ``(plan.seed, site, hit count)`` — deterministic per plan and per
    occurrence.
    """
    plan = current()
    if plan is None:
        return text
    count = plan.hits.get(site, 0)
    arm = plan._match(site)
    if arm is None:
        return text
    if arm.kind != "truncate":
        plan._raise(site, arm.kind)
    plan._record(site, arm.kind)
    rng = random.Random(f"{plan.seed}:{site}:{count}")
    return text[:rng.randrange(0, max(1, len(text)))]


# ---------------------------------------------------------------------------
# Ambient installation
# ---------------------------------------------------------------------------

@contextmanager
def use(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the ``with`` body.

    Plans nest; the innermost wins at instrumentation points.  The
    stack is swept on exit even if the body escaped abnormally.
    """
    global active
    _stack.append(plan)
    active = True
    try:
        yield plan
    finally:
        if plan in _stack:
            _stack.remove(plan)
        active = bool(_stack)


@contextmanager
def inject(site: str, *, kind: str = "exception", after: int = 0,
           seed: int = 0) -> Iterator[FaultPlan]:
    """``use(FaultPlan([FaultArm(...)]))`` in one call."""
    with use(FaultPlan([FaultArm(site=site, kind=kind, after=after)],
                       seed=seed)) as plan:
        yield plan


def teardown() -> int:
    """Forcibly uninstall every plan; returns how many were removed.

    Exists for run isolation (the benchmark runner calls it between
    runs so an injected-fault experiment can never perturb a later
    baseline measurement) and for test harnesses recovering from an
    abnormal exit.
    """
    global active
    removed = len(_stack)
    _stack.clear()
    active = False
    return removed


def plan_from_spec(spec: str, *, seed: int = 0) -> FaultPlan:
    """Build a plan from a compact text spec (the ``REPRO_FAULTS``
    environment variable): comma-separated arms, each
    ``site[:kind[:after]]``.

    >>> plan = plan_from_spec("fd.chase.step:exception:3,xml.parser.input:truncate")
    >>> [(a.site, a.kind, a.after) for a in plan.arms]
    [('fd.chase.step', 'exception', 3), ('xml.parser.input', 'truncate', 0)]
    """
    arms: list[FaultArm] = []
    for chunk in spec.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) > 3:
            raise ReproError(
                f"bad fault spec {chunk!r}: expected site[:kind[:after]]")
        site = parts[0]
        kind = parts[1] if len(parts) > 1 and parts[1] else "exception"
        try:
            after = int(parts[2]) if len(parts) > 2 else 0
        except ValueError:
            raise ReproError(
                f"bad fault spec {chunk!r}: after must be an integer")
        try:
            arms.append(FaultArm(site=site, kind=kind, after=after))
        except ValueError as error:
            raise ReproError(f"bad fault spec {chunk!r}: {error}")
    if not arms:
        raise ReproError(f"empty fault spec {spec!r}")
    return FaultPlan(arms, seed=seed)
