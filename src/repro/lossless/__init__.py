"""Instance-level losslessness checks (Section 6, Proposition 8).

The paper defines ``(D1, Σ1) <=_lossless (D2, Σ2)`` through relational
algebra queries over the tuple representations that make a commuting
diagram close.  This package implements the checkable core of that
definition: for every step of the decomposition algorithm, migrating a
document forward and translating its tuple table back must reproduce
the original document's information content exactly.
"""

from repro.lossless.check import (
    check_normalization_lossless,
    check_step_lossless,
    reconstruct_projection,
    string_projection,
)
from repro.lossless.queries import diagram_commutes, q1, q2

__all__ = [
    "check_step_lossless", "check_normalization_lossless",
    "string_projection", "reconstruct_projection",
    "diagram_commutes", "q1", "q2",
]
