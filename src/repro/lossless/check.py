"""Commuting-diagram losslessness checks on instances.

``string_projection`` renders a document's maximal tuples as a set of
value rows over the DTD's attribute/text paths — the document's
information content with node identities abstracted away (the job of
the query ``Q2`` in the paper's diagram, which strips the node ids a
transformation invents).

``reconstruct_projection`` plays ``Q1'``: from the *migrated* document
it rebuilds the original-schema rows.  For *moving attributes* the
moved value is read back from its new home; for *creating element
types* the original row joins its ``tau`` group on the key attributes
(the relational-algebra join the paper's proof uses).  A step is
lossless on a document when the reconstruction equals the original
projection.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.dtd.model import DTD
from repro.dtd.paths import Path
from repro.normalize.transforms import TransformStep
from repro.tuples.extract import tuples_of
from repro.xmltree.model import XMLTree

#: A value row: ``str(path) -> value`` with nulls omitted, frozen for
#: set membership.
Row = frozenset


def string_projection(dtd: DTD, tree: XMLTree) -> set[Row]:
    """The document's tuple table projected onto string-valued paths."""
    value_paths = [p for p in sorted(dtd.paths, key=str)
                   if not p.is_element]
    rows: set[Row] = set()
    for tuple_ in tuples_of(tree, dtd):
        rows.add(Row(
            (str(path), tuple_.get(path))
            for path in value_paths if tuple_.get(path) is not None))
    return rows


def reconstruct_projection(step: TransformStep, old_dtd: DTD,
                           migrated: XMLTree) -> set[Row]:
    """Rebuild the original-schema value rows from a migrated document."""
    if step.kind == "move":
        return _reconstruct_move(step, old_dtd, migrated)
    if step.kind == "create":
        return _reconstruct_create(step, old_dtd, migrated)
    raise ReproError(f"unknown transformation kind {step.kind!r}")


def _old_value_paths(old_dtd: DTD) -> list[Path]:
    return [p for p in sorted(old_dtd.paths, key=str) if not p.is_element]


def _reconstruct_move(step: TransformStep, old_dtd: DTD,
                      migrated: XMLTree) -> set[Row]:
    (old_value, new_value), = step.renaming.items()
    keep = [p for p in _old_value_paths(old_dtd) if p != old_value]
    owner = old_value.parent
    rows: set[Row] = set()
    for tuple_ in tuples_of(migrated, step.dtd):
        entries = {str(p): tuple_.get(p) for p in keep
                   if tuple_.get(p) is not None}
        # The old value was present iff its owner node was; for a moved
        # text element the owner is gone, so presence is inferred from
        # the owner's parent (the element was a forced child where the
        # algorithm applies this step).
        present = (tuple_.get(owner) is not None
                   if step.dtd.is_path(owner)
                   else tuple_.get(owner.parent) is not None)
        if present:
            value = tuple_.get(new_value)
            if value is not None:
                entries[str(old_value)] = value
        rows.add(Row(entries.items()))
    return rows


def _reconstruct_create(step: TransformStep, old_dtd: DTD,
                        migrated: XMLTree) -> set[Row]:
    # Recover the step's path vocabulary from its renaming map.  Keys
    # are *every* renamed value path but the stored one — attribute or
    # text (a ``tau`` group may be keyed by an ``.S`` path).
    old_value = step.fd.single_rhs
    new_value = step.renaming[old_value]
    key_pairs = [
        (old, new) for old, new in step.renaming.items()
        if not old.is_element and old != old_value]
    keep = [p for p in _old_value_paths(old_dtd) if p != old_value]
    owner = old_value.parent

    bases: dict[Row, set[str]] = {}
    for tuple_ in tuples_of(migrated, step.dtd):
        base = Row(
            (str(p), tuple_.get(p)) for p in keep
            if tuple_.get(p) is not None)
        candidates = bases.setdefault(base, set())
        # The old value existed only where its owner node did; without
        # this gate a tuple that never visited the owner would borrow
        # a value from the new tau group (which hangs off the root and
        # is therefore visible to every tuple).
        present = (tuple_.get(owner) is not None
                   if step.dtd.is_path(owner)
                   else tuple_.get(owner.parent) is not None)
        joined = present and all(
            tuple_.get(old_key) is not None
            and tuple_.get(old_key) == tuple_.get(new_key)
            for old_key, new_key in key_pairs)
        if joined:
            value = tuple_.get(new_value)
            if value is not None:
                candidates.add(value)
    rows: set[Row] = set()
    for base, values in bases.items():
        if len(values) > 1:
            raise ReproError(
                "reconstruction is ambiguous: the migrated document "
                f"associates values {sorted(values)} with one row — "
                "the key FD does not hold")
        if values:
            rows.add(Row(set(base) | {(str(old_value), values.pop())}))
        else:
            rows.add(base)
    return rows


def check_step_lossless(step: TransformStep, old_dtd: DTD,
                        document: XMLTree) -> bool:
    """Whether one transformation step loses information on a document:
    migrate forward, reconstruct backward, compare."""
    original = string_projection(old_dtd, document)
    migrated = step.migrate(document)
    reconstructed = reconstruct_projection(step, old_dtd, migrated)
    return original == reconstructed


def check_normalization_lossless(result, original_dtd: DTD,
                                 document: XMLTree) -> bool:
    """Check every step of a :class:`NormalizationResult` on a document
    (losslessness composes — Proposition 8(a))."""
    dtd = original_dtd
    current = document
    for step in result.steps:
        if not check_step_lossless(step, dtd, current):
            return False
        current = step.migrate(current)
        dtd = step.dtd
    return True
