"""Proposition 8's queries as actual Codd-table relational algebra.

The paper defines ``(D1, Σ1) <=_lossless (D2, Σ2)`` via relational
algebra queries over the tuple tables::

                        T  ————————→  T'
            tuples_D1   |                |   tuples_D2
                        ↓                ↓
      tuples_D1(T)  ←—Q1'—  Q1(·)  ←—Q2—  tuples_D2(T')

``Q2`` eliminates the node ids a transformation invents, and ``Q1`` /
``Q1'`` translate between the two schemas.  This module builds those
queries concretely for each transformation step, operating on
:class:`~repro.relational.codd.CoddTable` under Codd-table semantics
(nulls do not join/select), and checks the diagram commutes —
the same verdict as :mod:`repro.lossless.check`, but derived through
the paper's own query formalism.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.dtd.model import DTD
from repro.normalize.transforms import TransformStep
from repro.relational.codd import CoddTable, tuples_table
from repro.xmltree.model import XMLTree


def value_columns(dtd: DTD) -> list[str]:
    """The attribute/text columns of the tuple table (node-id columns
    are what Q2 eliminates)."""
    return [str(p) for p in sorted(dtd.paths, key=str)
            if not p.is_element]


def q1(step: TransformStep, old_dtd: DTD, table: CoddTable) -> CoddTable:
    """Translate the *old* tuple table into the shared value schema:
    project onto value columns (dropping node ids)."""
    return table.project(
        [c for c in value_columns(old_dtd) if c in table.attributes])


def q2(step: TransformStep, old_dtd: DTD, table: CoddTable) -> CoddTable:
    """Translate the *new* tuple table back to the old value schema.

    * ``move``: rename the moved column back and project.
    * ``create``: select the rows whose tau-branch joins the original
      branch on the key attributes (σ over Codd semantics drops
      null-keyed rows, so value-less rows survive via the union with
      the key-null selection), rename the value column back, project.
    """
    old_value = step.fd.single_rhs if step.kind == "create" else \
        next(iter(step.renaming))
    new_value = step.renaming[old_value]
    keep = [c for c in value_columns(old_dtd) if c != str(old_value)]

    if step.kind == "move":
        renamed = table.rename({str(new_value): str(old_value)})
        return renamed.project(
            [c for c in keep + [str(old_value)]
             if c in renamed.attributes])

    if step.kind != "create":
        raise ReproError(f"unknown step kind {step.kind!r}")

    key_pairs = [
        (str(old), str(new)) for old, new in step.renaming.items()
        if old.is_attribute and old != old_value]
    # Rows whose new-schema key attributes equal the old-branch ones:
    joined = table
    for old_key, new_key in key_pairs:
        joined = joined.select_eq(old_key, new_key)
    joined = joined.rename({str(new_value): str(old_value)})
    with_value = joined.project(
        [c for c in keep + [str(old_value)] if c in joined.attributes])
    if not key_pairs:
        # n = 0: no selection dropped anything; nulls are already in
        # the value column where the tau branch is absent.
        return with_value
    # Rows whose original branch carries no key at all (the value was
    # null there): the Codd-semantics selection dropped them, so they
    # re-enter with a null value column.
    no_branch = table
    for old_key, _new_key in key_pairs:
        no_branch = no_branch.select(
            lambda row, k=old_key: row.get(k) is None)
    padded = no_branch.project(
        [c for c in keep if c in no_branch.attributes])
    rows = [dict(row, **{str(old_value): None}) for row in padded.rows]
    completed = CoddTable(with_value.attributes, rows)
    return with_value.union(completed)


def diagram_commutes(step: TransformStep, old_dtd: DTD,
                     document: XMLTree) -> bool:
    """Check Proposition 8's commuting diagram on one document."""
    migrated = step.migrate(document)
    old_table = tuples_table(old_dtd, document)
    new_table = tuples_table(step.dtd, migrated)
    left = q1(step, old_dtd, old_table)
    right = q2(step, old_dtd, new_table)
    return left == right
