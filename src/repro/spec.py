"""The top-level public API: an XML specification ``(D, Σ)``.

:class:`XMLSpec` bundles a DTD with its functional dependencies and
exposes the paper's pipeline — satisfaction, implication, the XNF test,
and lossless normalization — behind one object::

    spec = XMLSpec.parse(dtd_text, fd_lines)
    spec.is_in_xnf()                  # Definition 8 via Proposition 10
    result = spec.normalize()         # Figure 4 algorithm
    new_doc = result.migrate(doc)     # carry documents across
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.dtd.model import DTD
from repro.dtd.parser import parse_dtd
from repro.fd.implication import (
    EngineName,
    ImplicationEngine,
    ImplicationVerdict,
)
from repro.fd.model import FD, parse_fds
from repro.fd.satisfaction import satisfies_all, violating_pairs
from repro.normalize.algorithm import NormalizationResult, normalize
from repro.normalize.simple_algorithm import normalize_simple
from repro.normalize.transforms import NewElementNames
from repro.xnf.check import is_in_xnf, xnf_violations
from repro.xmltree.conformance import conforms, validate_conformance
from repro.xmltree.model import XMLTree
from repro.xmltree.parser import parse_xml


@dataclass
class XMLSpec:
    """An XML specification ``(D, Σ)`` — Section 4."""

    dtd: DTD
    sigma: list[FD] = field(default_factory=list)
    engine: EngineName = "auto"

    def __post_init__(self) -> None:
        self.sigma = [fd.validate(self.dtd) for fd in self.sigma]
        self._oracle: ImplicationEngine | None = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def parse(cls, dtd_text: str, fds: str | Iterable[str | FD] = (), *,
              root: str | None = None,
              engine: EngineName = "auto") -> "XMLSpec":
        """Parse a DTD and FD lines into a specification."""
        dtd = parse_dtd(dtd_text, root=root)
        if isinstance(fds, str):
            sigma = parse_fds(fds)
        else:
            sigma = [fd if isinstance(fd, FD) else FD.parse(fd)
                     for fd in fds]
        return cls(dtd=dtd, sigma=sigma, engine=engine)

    # -- implication / XNF ---------------------------------------------------

    @property
    def oracle(self) -> ImplicationEngine:
        """A cached implication engine for this ``(D, Σ)``."""
        if self._oracle is None:
            self._oracle = ImplicationEngine(
                self.dtd, self.sigma, engine=self.engine)
        return self._oracle

    def implies(self, fd: FD | str) -> bool:
        """``(D, Σ) |- fd``."""
        if isinstance(fd, str):
            fd = FD.parse(fd)
        return self.oracle.implies(fd.validate(self.dtd))

    def decide(self, fd: FD | str) -> "ImplicationVerdict":
        """Three-valued ``(D, Σ) |- fd``: ``YES``/``NO``/``UNKNOWN``.

        Unlike :meth:`implies`, never raises
        :class:`~repro.errors.ResourceExhausted` — a tripped
        :mod:`repro.guard` budget degrades to ``UNKNOWN`` with the
        limit named (see ``docs/ROBUSTNESS.md``).
        """
        if isinstance(fd, str):
            fd = FD.parse(fd)
        return self.oracle.decide(fd.validate(self.dtd))

    def is_trivial(self, fd: FD | str) -> bool:
        """``(D, ∅) |- fd``."""
        if isinstance(fd, str):
            fd = FD.parse(fd)
        return self.oracle.is_trivial(fd.validate(self.dtd))

    def is_in_xnf(self) -> bool:
        """Definition 8, tested per Proposition 10."""
        return is_in_xnf(self.dtd, self.sigma, engine=self.engine)

    def xnf_violations(self) -> list[FD]:
        """The anomalous Σ-FDs witnessing an XNF violation."""
        return xnf_violations(self.dtd, self.sigma, engine=self.engine)

    # -- documents ----------------------------------------------------------

    def parse_document(self, xml_text: str) -> XMLTree:
        """Parse an XML document and validate it against ``(D, Σ)``."""
        tree = parse_xml(xml_text)
        validate_conformance(tree, self.dtd)
        return tree

    def document_conforms(self, tree: XMLTree) -> bool:
        """``T |= D``."""
        return conforms(tree, self.dtd)

    def document_satisfies(self, tree: XMLTree,
                           fds: Iterable[FD] | None = None) -> bool:
        """``T |= Σ`` (or a supplied FD subset)."""
        return satisfies_all(tree, self.dtd,
                             self.sigma if fds is None else fds)

    def document_violations(self, tree: XMLTree) -> dict[FD, int]:
        """Per-FD count of violating tuple pairs in a document."""
        from repro.tuples.extract import tuples_of
        tuples = tuples_of(tree, self.dtd)
        return {
            fd: len(violating_pairs(tree, self.dtd, fd, tuples=tuples))
            for fd in self.sigma
        }

    # -- normalization ---------------------------------------------------------

    def normalize(self, *, naming: Callable[[int, FD], NewElementNames]
                  | None = None,
                  check_progress: bool = True,
                  resume=None, on_step=None) -> NormalizationResult:
        """The Figure 4 decomposition algorithm.

        ``resume``/``on_step`` thread through to
        :func:`repro.normalize.algorithm.normalize` for checkpointed,
        resumable runs.
        """
        return normalize(self.dtd, self.sigma, engine=self.engine,
                         naming=naming, check_progress=check_progress,
                         resume=resume, on_step=on_step)

    def normalize_simple(self, *, naming: Callable[[int, FD],
                                                   NewElementNames]
                         | None = None) -> NormalizationResult:
        """The implication-free variant (Proposition 7)."""
        return normalize_simple(self.dtd, self.sigma, naming=naming)

    def explain(self, fd: FD | str) -> str:
        """A rendered closure derivation for an implication query."""
        from repro.fd.explain import explain_implication
        return explain_implication(self.dtd, self.sigma, fd)

    def analyze(self, documents=()) -> "object":
        """A :class:`repro.report.DesignReport` for this spec."""
        from repro.report import analyze
        return analyze(self, documents)

    def normalized_spec(self, result: NormalizationResult | None = None,
                        ) -> "XMLSpec":
        """The specification produced by normalization."""
        if result is None:
            result = self.normalize()
        return XMLSpec(dtd=result.dtd, sigma=result.sigma,
                       engine=self.engine)

    def __str__(self) -> str:
        lines = [str(self.dtd).rstrip(), ""]
        lines.extend(f"FD: {fd}" for fd in self.sigma)
        return "\n".join(lines) + "\n"
