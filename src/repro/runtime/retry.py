"""Deterministic retry with exponential backoff and seeded jitter.

A batch runner that retries must answer two questions per failure:
*is this worth retrying?* and *how long to wait?*  Both answers here
are deterministic, because the whole batch runtime is replayable under
:mod:`repro.faults` — two runs of the same manifest with the same
fault plan must produce byte-identical summaries.

**Classification** (:func:`is_transient`): an error is worth retrying
when a repeat of the same attempt could plausibly end differently.

* :class:`~repro.errors.InjectedFault` and
  :class:`~repro.errors.InjectedAllocationFailure` — transient by
  construction: a :class:`~repro.faults.FaultArm` fires once and never
  again, the deterministic model of "the flaky thing happened".
* :class:`~repro.errors.ResourceExhausted` with ``limit="injected"``
  (a planted exhaustion) or ``limit="deadline"`` (wall-clock, so
  load-dependent) — transient.
* :class:`~repro.errors.ResourceExhausted` on a *counted* limit
  (``steps`` / ``branches`` / ``nodes``) — **permanent**: the engines
  are deterministic, so the same budget buys the same trip.
* :class:`~repro.errors.WorkerCrash` — **transient**: the death of a
  pool worker (signal, OOM kill, corrupted result pipe, heartbeat
  stall) says something about the environment, not necessarily about
  the task, so the supervisor requeues it — under its *own* crash
  budget, so a task that deterministically kills every worker it
  lands on still dead-letters (reason ``worker_crash``) rather than
  looping forever.
* Every other :class:`~repro.errors.ReproError` (parse failures,
  invalid FDs, unsupported features, ensemble disagreements) —
  permanent: the input itself is the problem.

**Backoff** (:meth:`RetryPolicy.delay_ms`): exponential with
full-decorrelation jitter, ``base * 2^attempt * U[0.5, 1.5)``, where
the uniform draw comes from ``random.Random`` seeded with
``(policy seed, task id, attempt)`` — never from the wall clock, never
from a shared generator whose state would depend on scheduling order.
Two batches with the same seed plan the same delays; two tasks in one
batch still spread out (their ids differ).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import (
    FaultError,
    ReproError,
    ResourceExhausted,
    WorkerCrash,
)

#: ``ResourceExhausted.limit`` values considered transient.
TRANSIENT_LIMITS = ("injected", "deadline")


def is_transient(error: ReproError) -> bool:
    """Whether a repeat of the same attempt could end differently."""
    if isinstance(error, FaultError):
        return True
    if isinstance(error, WorkerCrash):
        return True
    if isinstance(error, ResourceExhausted):
        return error.limit in TRANSIENT_LIMITS
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to wait in between.

    ``retries`` counts *re*-attempts: a task runs at most
    ``retries + 1`` times.  ``backoff_base_ms`` of 0 disables waiting
    (useful in tests and when faults are known to be injected).
    """

    retries: int = 2
    backoff_base_ms: float = 100.0
    multiplier: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(
                f"retries must be >= 0, got {self.retries}")
        if self.backoff_base_ms < 0:
            raise ValueError("backoff_base_ms must be >= 0, "
                             f"got {self.backoff_base_ms}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}")

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    def should_retry(self, error: ReproError, attempt: int) -> bool:
        """Whether to re-run after ``attempt`` (0-based) failed with
        ``error``."""
        return attempt + 1 < self.max_attempts and is_transient(error)

    def delay_ms(self, task_id: str, attempt: int) -> float:
        """The planned wait before re-running after failed ``attempt``.

        Deterministic: the jitter factor is drawn from a generator
        seeded with ``(seed, task_id, attempt)`` — the task's identity,
        never the wall clock.
        """
        if self.backoff_base_ms == 0:
            return 0.0
        rng = random.Random(f"{self.seed}:{task_id}:{attempt}")
        jitter = 0.5 + rng.random()  # U[0.5, 1.5)
        return self.backoff_base_ms * (self.multiplier ** attempt) * jitter
