"""Per-fault-site circuit breakers: stop paying for known-bad sites.

When one fault site fails task after task (a systematically broken
spec corpus entry, a planted repeated fault, an engine bug), spending
the full retry/backoff budget on every affected task multiplies the
damage.  The classic remedy is a circuit breaker; ours is keyed by
**failure signature** — the fault site of a
:class:`~repro.errors.FaultError`, ``guard.<limit>`` for a
:class:`~repro.errors.ResourceExhausted`, the exception type name
otherwise — so one pathological site cannot open the breaker for
unrelated failures.

State machine (deterministic, counted in events — never wall clock)::

            failure x threshold                  probe failure
    CLOSED ---------------------> OPEN <------------------------+
       ^                            | skip retries,              |
       |                            | dead-letter directly       |
       | success                    | (skip-and-record)          |
       |                            v                            |
       +------------------- HALF_OPEN  (every probe_interval-th  |
          probe succeeds            skip admits one full-retry --+
                                    probe)

* **CLOSED** — failures are retried normally; ``threshold``
  *consecutive* exhausted-retry failures with the same signature trip
  the breaker (a success resets the count).
* **OPEN** — a task failing with this signature skips its retry
  budget: it is dead-lettered on the first failure, marked
  ``breaker_open`` (degrade, don't abort — the batch keeps going).
* **HALF_OPEN** — every ``probe_interval``-th skipped task is admitted
  as a probe with its full retry budget; a probe that succeeds closes
  the breaker, one that fails re-opens it.

The registry (:class:`BreakerBoard`) is per-batch state, reported in
the batch summary so an operator can see *which* site burned down and
how often it was probed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import (
    FaultError,
    ReproError,
    ResourceExhausted,
    WorkerCrash,
)
from repro.obs import metrics as _obs

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


def failure_signature(error: ReproError) -> str:
    """The breaker key of one failure.

    Faults group by their injection site, budget trips by the tripped
    limit, worker crashes by their detection source (the signal name,
    the exit code, a corrupted result pipe, a heartbeat stall),
    everything else by exception type — the granularity at which "this
    keeps happening" is meaningful.
    """
    if isinstance(error, FaultError):
        return f"site:{error.site}"
    if isinstance(error, WorkerCrash):
        return f"crash:{error.detail}"
    if isinstance(error, ResourceExhausted):
        return f"guard:{error.limit}"
    return f"error:{type(error).__name__}"


@dataclass
class Breaker:
    """The per-signature state machine (see the module docstring)."""

    signature: str
    threshold: int = 5
    probe_interval: int = 8
    state: str = CLOSED
    consecutive_failures: int = 0
    #: Tasks dead-lettered without retries while OPEN.
    skips: int = 0
    #: Skips since the breaker last opened (drives probe admission).
    _skips_since_open: int = field(default=0, repr=False)
    trips: int = 0
    probes: int = 0
    #: Back-reference set by :meth:`BreakerBoard.get`, so state
    #: transitions can refresh the board-level ``runtime.breaker.open``
    #: gauge.
    _board: "BreakerBoard | None" = field(default=None, repr=False,
                                          compare=False)

    def _transition(self, new_state: str) -> None:
        """Move to ``new_state``, emitting the transition telemetry.

        Every *change* of state increments
        ``runtime.breaker.transitions.<state>`` (state names use
        underscores: ``closed`` / ``open`` / ``half_open``) and
        refreshes the board's open-breaker gauge; re-asserting the
        current state emits nothing.
        """
        if new_state == self.state:
            return
        self.state = new_state
        if _obs.enabled:
            _obs.inc("runtime.breaker.transitions."
                     + new_state.replace("-", "_"))
            if self._board is not None:
                self._board.publish_open_gauge()

    def allows_retries(self) -> bool:
        """Whether the next failing task may spend its retry budget.

        While OPEN, every ``probe_interval``-th admission request is
        let through as a HALF_OPEN probe; the rest are told to skip.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._skips_since_open >= self.probe_interval:
                self._transition(HALF_OPEN)
                self.probes += 1
                if _obs.enabled:
                    _obs.inc("runtime.breaker.probes")
                return True
            return False
        return True  # HALF_OPEN: the probe in flight retries fully

    def record_skip(self) -> None:
        """A task was dead-lettered without retries (breaker open)."""
        self.skips += 1
        self._skips_since_open += 1
        if _obs.enabled:
            _obs.inc("runtime.breaker.skips")

    def record_success(self) -> None:
        """A task with work at this signature ultimately succeeded."""
        if self.state == HALF_OPEN and _obs.enabled:
            _obs.inc("runtime.breaker.closes")
        self._transition(CLOSED)
        self.consecutive_failures = 0
        self._skips_since_open = 0

    def record_failure(self) -> None:
        """A task ultimately failed here after exhausting retries."""
        self.consecutive_failures += 1
        if self.state == HALF_OPEN:
            # The probe failed: straight back to OPEN.
            self._transition(OPEN)
            self._skips_since_open = 0
            return
        if self.state == CLOSED \
                and self.consecutive_failures >= self.threshold:
            self._transition(OPEN)
            self._skips_since_open = 0
            self.trips += 1
            if _obs.enabled:
                _obs.inc("runtime.breaker.trips")

    def snapshot(self) -> dict:
        """The JSON-ready summary entry for this breaker."""
        return {"state": self.state, "trips": self.trips,
                "skips": self.skips, "probes": self.probes,
                "consecutive_failures": self.consecutive_failures}


class BreakerBoard:
    """All breakers of one batch run, created on first failure."""

    def __init__(self, *, threshold: int = 5,
                 probe_interval: int = 8) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if probe_interval < 1:
            raise ValueError(
                f"probe_interval must be >= 1, got {probe_interval}")
        self.threshold = threshold
        self.probe_interval = probe_interval
        self._breakers: dict[str, Breaker] = {}

    def get(self, signature: str) -> Breaker:
        breaker = self._breakers.get(signature)
        if breaker is None:
            breaker = Breaker(signature=signature,
                              threshold=self.threshold,
                              probe_interval=self.probe_interval,
                              _board=self)
            self._breakers[signature] = breaker
        return breaker

    def state_counts(self) -> dict[str, int]:
        """How many breakers sit in each state right now."""
        counts = {CLOSED: 0, OPEN: 0, HALF_OPEN: 0}
        for breaker in self._breakers.values():
            counts[breaker.state] += 1
        return counts

    def publish_open_gauge(self) -> None:
        """Refresh the ``runtime.breaker.open`` gauge (count of
        breakers currently OPEN); called on every state transition."""
        _obs.set_gauge("runtime.breaker.open",
                       sum(1 for breaker in self._breakers.values()
                           if breaker.state == OPEN))

    def snapshot(self) -> dict[str, dict]:
        """Only breakers that saw at least one failure, key-sorted."""
        return {signature: breaker.snapshot()
                for signature, breaker
                in sorted(self._breakers.items())}
