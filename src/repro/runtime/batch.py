"""The crash-tolerant batch runner: no task is ever lost silently.

:class:`BatchRunner` executes every task of a
:class:`~repro.runtime.manifest.Manifest` under per-task isolation —
its own :func:`repro.guard.limits` budget, its own
:func:`repro.obs.trace.span`, its own :mod:`~repro.runtime.ensemble`
session, a fresh :class:`~repro.spec.XMLSpec` per attempt — so one
pathological spec can neither corrupt nor starve its neighbours.

The failure path is layered:

1. **Retry** (:class:`~repro.runtime.retry.RetryPolicy`): transient
   failures (injected faults, deadline trips) are re-attempted with
   seeded exponential backoff; permanent ones (parse errors, counted
   budget trips, ensemble disagreements) go straight to step 3.
2. **Circuit breaker** (:class:`~repro.runtime.breaker.BreakerBoard`):
   when one failure signature keeps exhausting retry budgets, its
   breaker opens and later tasks failing the same way are
   dead-lettered on first failure (``breaker_open``) instead of
   burning their retries — with periodic probes to detect recovery.
3. **Dead-letter report**: every unrecoverable task lands in the
   summary's ``dead_letters`` with its complete error chain (each
   exception's type, message, fault site / tripped limit, walked via
   ``__cause__``/``__context__``), the per-attempt failure history,
   and the reason class.  The zero-task-loss invariant is explicit:
   ``counts.lost`` is computed as ``total - ok - failed`` and the
   chaos suite asserts it is 0 under every fault plan.

Only :class:`~repro.errors.ReproError` is handled: any other
exception escaping a task is a breach of the library's
exception-safety contract (``docs/ROBUSTNESS.md``) and is allowed to
crash the batch loudly.

The summary (:meth:`BatchRunner.run`) is a JSON-ready dict that is
**deterministic**: no wall-clock values, collections sorted, backoff
delays planned from ``(seed, task id, attempt)`` — two runs of the
same manifest under the same fault plan are byte-identical.

**Backends.**  The runner core (per-task execution, retry, breaker,
outcome bookkeeping, summary assembly) is backend-agnostic.
:class:`SerialBackend` (the default) walks the manifest in order in
this process; :class:`repro.runtime.pool.PoolBackend` dispatches the
same tasks to a supervised pool of forked worker processes,
arbitrates their circuit-breaker decisions on this runner's own
board, and merges their outcomes back into manifest order, so
:meth:`BatchRunner.summarize` renders the *same bytes* for the same
outcomes regardless of which backend produced them.  The summary is
byte-identical to a serial run whenever no breaker opens; once one
does, probe-vs-skip decisions depend on the order concurrent
failures reach the shared board (the exact scope is laid out in
``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import (
    FaultError,
    ReproError,
    ResourceExhausted,
)
from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro import guard
from repro.runtime import ensemble as _ensemble
from repro.runtime.breaker import BreakerBoard, failure_signature
from repro.runtime.manifest import Manifest, Task
from repro.runtime.retry import RetryPolicy, is_transient
from repro.spec import XMLSpec

#: Bump on any incompatible change to the summary JSON layout.
SUMMARY_VERSION = 1

#: The ``schema`` discriminator stamped on every batch summary.
SUMMARY_SCHEMA = "repro.runtime.batch"

#: Dead-letter reason classes.
REASON_PERMANENT = "permanent"
REASON_RETRIES_EXHAUSTED = "retries_exhausted"
REASON_BREAKER_OPEN = "breaker_open"
REASON_WORKER_CRASH = "worker_crash"


def error_chain(error: BaseException) -> list[dict]:
    """The full causal chain of one failure, outermost first.

    Walks ``__cause__`` (explicit ``raise ... from``) falling back to
    ``__context__`` (implicit chaining), with an identity-based cycle
    guard.  Each link carries the exception type and message plus the
    structured fields that matter for triage: the fault site and kind
    of a :class:`~repro.errors.FaultError`, the tripped limit and
    progress annotations of a :class:`~repro.errors.ResourceExhausted`.
    """
    chain: list[dict] = []
    seen: set[int] = set()
    current: BaseException | None = error
    while current is not None and id(current) not in seen:
        seen.add(id(current))
        entry: dict = {"type": type(current).__name__,
                       "message": str(current)}
        if isinstance(current, FaultError):
            entry["site"] = current.site
            entry["kind"] = current.kind
        if isinstance(current, ResourceExhausted):
            entry["limit"] = current.limit
            if current.partial:
                entry["partial"] = {key: current.partial[key]
                                    for key in sorted(current.partial)}
        chain.append(entry)
        current = current.__cause__ or current.__context__
    return chain


@dataclass
class TaskOutcome:
    """What happened to one task, JSON-ready via :meth:`to_json`."""

    task: Task
    status: str = "ok"                      # "ok" | "dead-letter"
    attempts: int = 0
    delays_ms: list[float] = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)
    result: dict | None = None
    reason: str | None = None
    signature: str | None = None
    disagreements: list[dict] = field(default_factory=list)
    #: Telemetry-only measurements for ``on_task_done`` consumers (the
    #: run ledger): wall time across every attempt of this task, and
    #: the counter deltas it produced (empty while obs is disabled).
    #: Deliberately excluded from :meth:`to_json` — the summary must
    #: stay byte-deterministic and wall clocks are not.
    wall_s: float = 0.0
    counter_delta: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_json(self) -> dict:
        payload: dict = {"id": self.task.id, "op": self.task.op,
                         "status": self.status,
                         "attempts": self.attempts,
                         "retried": self.attempts > 1,
                         "delays_ms": list(self.delays_ms)}
        if self.result is not None:
            payload["result"] = self.result
        if self.failures:
            payload["failures"] = list(self.failures)
        if self.disagreements:
            payload["disagreements"] = list(self.disagreements)
        return payload

    def dead_letter(self) -> dict:
        """The dead-letter report entry for a failed task."""
        assert self.status == "dead-letter" and self.failures
        return {"id": self.task.id, "op": self.task.op,
                "reason": self.reason, "signature": self.signature,
                "attempts": self.attempts,
                "failures": list(self.failures),
                "error_chain": self.failures[-1]["chain"]}


class SerialBackend:
    """The in-process backend: every task runs here, in manifest
    order.  This is the reference execution the pool backend's merged
    report is byte-compared against."""

    name = "serial"

    def run(self, runner: "BatchRunner") -> list[TaskOutcome]:
        # Journal-replayed outcomes merge with live ones by manifest
        # index; without a journal both dicts reduce to the plain
        # manifest-order walk.
        outcomes = dict(runner.replayed_outcomes())
        for index, task in runner.pending_tasks():
            runner.journal_intent(index, task)
            outcome = runner._run_task(task)
            runner.journal_result(index, outcome)
            outcomes[index] = outcome
            if runner.on_task_done is not None:
                runner.on_task_done(outcome)
        return [outcomes[index] for index in sorted(outcomes)]


class BatchRunner:
    """Run a manifest to completion, losing nothing (see module doc).

    ``sleeper`` receives each planned backoff delay in milliseconds;
    the default really sleeps, tests pass a recorder.  The *planned*
    delays always land in the summary either way, so sleeping is pure
    side effect and never affects the report bytes.

    ``backend`` chooses where tasks execute: ``None`` or a
    :class:`SerialBackend` runs them here; a
    :class:`repro.runtime.pool.PoolBackend` fans them out to
    supervised worker processes.  Either way the summary is assembled
    by :meth:`summarize` from the same outcome records.
    """

    def __init__(self, manifest: Manifest, *,
                 policy: RetryPolicy | None = None,
                 board: BreakerBoard | None = None,
                 ensemble_mode: str = "off",
                 sleeper: Callable[[float], None] | None = None,
                 on_task_done: Callable[[TaskOutcome], None]
                 | None = None,
                 backend: "SerialBackend | None" = None,
                 journal=None) -> None:
        if ensemble_mode not in _ensemble.MODES:
            raise ValueError(
                f"unknown ensemble mode {ensemble_mode!r}; expected "
                f"one of {list(_ensemble.MODES)}")
        self.manifest = manifest
        self.policy = policy if policy is not None \
            else RetryPolicy(seed=manifest.seed)
        self.board = board if board is not None else BreakerBoard()
        self.ensemble_mode = ensemble_mode
        self._sleep = sleeper if sleeper is not None \
            else (lambda ms: time.sleep(ms / 1000.0))
        #: Live-telemetry hook (heartbeats, progress gauges): called
        #: with each terminal :class:`TaskOutcome` — in manifest order
        #: on the serial backend, in completion order on the pool.
        #: ``None`` (the default) keeps the happy path hook-free.
        self.on_task_done = on_task_done
        self.backend = backend if backend is not None else SerialBackend()
        #: Optional :class:`repro.runtime.journal.BatchJournal`.  The
        #: seam below is shared by both backends and costs one ``None``
        #: check per call when disabled (gated <1% by
        #: ``benchmarks/bench_journal.py``).
        self.journal = journal

    # -- the journal seam ----------------------------------------------

    def pending_tasks(self):
        """``(index, task)`` pairs still to execute this run — the
        whole manifest without a journal, the not-yet-completed slice
        with one."""
        if self.journal is None:
            return self.manifest.iter_indexed()
        return self.manifest.iter_indexed(
            skip=self.journal.completed_indices)

    def replayed_outcomes(self) -> dict:
        """Completed outcomes replayed from the journal, by index."""
        if self.journal is None:
            return {}
        return self.journal.completed_outcomes()

    def journal_intent(self, index: int, task: Task) -> None:
        """Record that ``task`` is about to be dispatched."""
        if self.journal is not None:
            self.journal.intent(index, task)

    def journal_result(self, index: int, outcome: "TaskOutcome") -> None:
        """Record a task's terminal outcome, durably, before it is
        merged into the in-memory report."""
        if self.journal is not None:
            self.journal.result(index, outcome)

    # -- one task ------------------------------------------------------

    def _execute(self, task: Task) -> dict:
        """One attempt of one task; raises :class:`ReproError` on any
        failure (spec-file reads included)."""
        try:
            dtd_text = task.load_dtd_text()
            fds_text = task.load_fds_text()
        except OSError as error:
            # A per-task input problem, not a manifest problem: the
            # manifest validated, this file is unreadable *now*.
            raise ReproError(
                f"cannot read spec file for task {task.id!r}: "
                f"{error}") from error
        engine = task.engine if self.ensemble_mode == "off" \
            else "ensemble"
        spec = XMLSpec.parse(dtd_text, fds_text, root=task.root,
                             engine=engine)
        if task.op == "implies":
            assert task.fd is not None
            return {"implied": spec.implies(task.fd)}
        if task.op == "check":
            violations = spec.xnf_violations()
            return {"in_xnf": not violations,
                    "violations": sorted(str(fd) for fd in violations)}
        assert task.op == "normalize"
        result = spec.normalize()
        return {"steps": len(result.steps),
                "final_in_xnf": XMLSpec(
                    dtd=result.dtd, sigma=list(result.sigma),
                    engine=engine).is_in_xnf()}

    def _attempt(self, task: Task, outcome: TaskOutcome) -> dict:
        """One isolated attempt: own budget, span, ensemble session."""
        with _trace.task_scope(task.id):
            with _trace.span("runtime.task", task=task.id, op=task.op,
                             attempt=outcome.attempts):
                with guard.limits(**task.budget_kwargs()):
                    with _ensemble.session(self.ensemble_mode) as sess:
                        try:
                            return self._execute(task)
                        finally:
                            outcome.disagreements.extend(
                                record.to_json()
                                for record in sess.disagreements)

    def _run_task(self, task: Task) -> TaskOutcome:
        """Run one task to a terminal outcome, measuring the ledger's
        telemetry (wall time, counter delta) around the retry loop."""
        counters_before = _obs.counters_snapshot() if _obs.enabled \
            else None
        wall_start = time.perf_counter()
        outcome = self._run_task_core(task)
        outcome.wall_s = time.perf_counter() - wall_start
        if counters_before is not None:
            outcome.counter_delta = {
                name: value - counters_before.get(name, 0)
                for name, value in _obs.counters_snapshot().items()
                if value != counters_before.get(name, 0)}
        return outcome

    def _run_task_core(self, task: Task) -> TaskOutcome:
        outcome = TaskOutcome(task=task)
        if _obs.enabled:
            _obs.inc("runtime.tasks")
        last_signature: str | None = None
        while True:
            attempt = outcome.attempts  # 0-based index of this attempt
            outcome.attempts += 1
            if _obs.enabled:
                _obs.inc("runtime.attempts")
            try:
                outcome.result = self._attempt(task, outcome)
            except ReproError as error:
                signature = failure_signature(error)
                breaker = self.board.get(signature)
                last_signature = signature
                outcome.failures.append(
                    {"attempt": attempt, "signature": signature,
                     "transient": is_transient(error),
                     "chain": error_chain(error)})
                if self.policy.should_retry(error, attempt):
                    if breaker.allows_retries():
                        delay = self.policy.delay_ms(task.id, attempt)
                        outcome.delays_ms.append(delay)
                        if _obs.enabled:
                            _obs.inc("runtime.retries")
                        if delay > 0:
                            self._sleep(delay)
                        continue
                    # Known-bad signature: degrade — skip the retry
                    # budget, record, and move on to the next task.
                    breaker.record_skip()
                    outcome.reason = REASON_BREAKER_OPEN
                else:
                    breaker.record_failure()
                    outcome.reason = REASON_RETRIES_EXHAUSTED \
                        if is_transient(error) else REASON_PERMANENT
                outcome.status = "dead-letter"
                outcome.signature = signature
                if _obs.enabled:
                    _obs.inc("runtime.tasks.deadletter")
                return outcome
            if last_signature is not None:
                # Success after failures: close that breaker.
                self.board.get(last_signature).record_success()
            if _obs.enabled:
                _obs.inc("runtime.tasks.ok")
                if outcome.attempts > 1:
                    _obs.inc("runtime.tasks.retried")
            return outcome

    # -- the batch -----------------------------------------------------

    def run(self) -> dict:
        """Execute every task; return the JSON-ready batch summary."""
        # Both backends report this runner's own board: the pool
        # supervisor arbitrates every worker breaker decision on it,
        # so no per-backend breaker plumbing is needed here.
        if self.journal is not None:
            # Replayed tasks never re-execute, but their breaker
            # traffic shaped the board the summary reports — replay it
            # before any live task touches the board.
            self.journal.replay_board(self.board)
        try:
            return self.summarize(self.backend.run(self))
        finally:
            if _obs.enabled:
                # The run is over: nothing can be short-circuited any
                # more, so the operator-facing gauge drains to 0 even
                # when breakers were still open at the final task —
                # a post-run scrape must not read stale liveness.
                _obs.set_gauge("runtime.breaker.open", 0)

    def summarize(self, outcomes: list[TaskOutcome], *,
                  breakers: dict | None = None) -> dict:
        """Assemble the batch summary from terminal outcomes.

        Backend-agnostic and purely a function of its inputs and the
        runner's board: the pool backend hands over the same
        manifest-ordered outcome list (and mutated the same board) a
        serial run would produce.  ``breakers`` substitutes a
        different snapshot for callers reporting another board.
        """
        ok = sum(1 for outcome in outcomes if outcome.ok)
        failed = sum(1 for outcome in outcomes if not outcome.ok)
        total = len(outcomes)
        disagreements = sum(len(outcome.disagreements)
                            for outcome in outcomes)
        return {
            "schema": SUMMARY_SCHEMA,
            "version": SUMMARY_VERSION,
            "manifest": self.manifest.source,
            "seed": self.manifest.seed,
            "ensemble": self.ensemble_mode,
            "policy": {"retries": self.policy.retries,
                       "backoff_base_ms": self.policy.backoff_base_ms,
                       "multiplier": self.policy.multiplier,
                       "seed": self.policy.seed},
            # The zero-task-loss invariant, stated in the report
            # itself: every task is accounted for as ok or failed.
            "counts": {"total": total, "ok": ok, "failed": failed,
                       "lost": total - ok - failed},
            "tasks": [outcome.to_json() for outcome in outcomes],
            "dead_letters": [outcome.dead_letter()
                             for outcome in outcomes if not outcome.ok],
            "breakers": breakers if breakers is not None
            else self.board.snapshot(),
            "ensemble_disagreements": disagreements,
        }


def run_batch(manifest: Manifest, *, policy: RetryPolicy | None = None,
              board: BreakerBoard | None = None,
              ensemble_mode: str = "off",
              sleeper: Callable[[float], None] | None = None,
              on_task_done: Callable[[TaskOutcome], None]
              | None = None,
              backend: SerialBackend | None = None,
              journal=None) -> dict:
    """One-shot :class:`BatchRunner` convenience."""
    return BatchRunner(manifest, policy=policy, board=board,
                       ensemble_mode=ensemble_mode, sleeper=sleeper,
                       on_task_done=on_task_done, backend=backend,
                       journal=journal).run()
