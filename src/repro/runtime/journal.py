"""Crash-safe batch journaling: survive parent death, resume exactly-once.

PR 7 made *worker* crashes recoverable; this module makes the batch
survive the death of the **supervisor** itself.  ``xnf batch --journal
FILE`` appends a write-ahead log of the run: one ``meta`` record
pinning everything that shapes the summary bytes, an ``intent`` record
before each task is dispatched, and a ``result`` record carrying the
task's full terminal outcome once it lands.  ``--resume`` replays that
log, skips completed tasks, re-dispatches the ones that were in flight
when the parent died, and emits a merged summary **byte-identical** to
an uninterrupted serial run whenever no breaker opened — the PR 7
determinism contract, extended across process lifetimes.

The journal file is JSON-lines::

    {"record": "meta", "schema": "repro.runtime.journal", "version": 1,
     "manifest": "batch.jsonl", "manifest_sha": "d05b54…", "seed": 7,
     "count": 100000, "ensemble": "off",
     "policy": {"retries": 2, "backoff_base_ms": 100.0,
                "multiplier": 2.0, "seed": 7},
     "breaker": {"threshold": 5, "probe_interval": 8}}
    {"record": "intent", "index": 0, "id": "corpus-000000"}
    {"record": "result", "index": 0, "id": "corpus-000000",
     "op": "check", "dtd_sha": "…", "fds_sha": null,
     "reason": null, "signature": null,
     "payload": { …the summary's ``tasks[0]`` entry, verbatim… }}

Design decisions, each load-bearing:

* **Append = one ``write`` of one full line, then ``fsync``.**  A
  record is either entirely in the file or entirely absent; the only
  partial state a crash can leave is a torn *trailing* line, which
  resume truncates with a counted warning (``runtime.journal.torn``)
  and never treats as an error.  A torn line anywhere *else* means the
  file was edited, not crashed on, and raises
  :class:`~repro.errors.JournalError` (exit 2).
* **Meta is verified field-by-field on resume.**  Every field in the
  meta record affects summary bytes (manifest identity via the same
  ``source:seed:count`` fingerprint the run ledger uses, retry policy,
  breaker knobs, ensemble mode); a mismatch is a structural error —
  the journal cannot apply to this invocation.  Per-task ``dtd_sha`` /
  ``fds_sha`` fingerprints are recorded in each result for audit, but
  deliberately *not* re-verified on resume: checking them would force
  a spec-file read per completed task, defeating the streaming-skip
  contract (see :meth:`Manifest.iter_indexed`).
* **Results replay, breaker traffic replays with them.**  The summary
  embeds the breaker board snapshot, so a resumed run reconstructs the
  board by replaying each journaled outcome's breaker decisions in
  manifest order (:meth:`BatchJournal.replay_board`) — the exact calls
  ``BatchRunner._run_task_core`` made, recoverable from the outcome
  record alone.  ``worker_crash`` outcomes are skipped: their breaker
  traffic went to the pool's private crash board, which is invisible
  in the summary by design.
* **Intent without result ⇒ re-dispatch.**  The task may have partially
  executed before the crash; every op is a pure function of its spec
  inputs, so re-execution is idempotent.  Counted as
  ``runtime.journal.replayed``.

Fault sites ``runtime.journal.append`` / ``runtime.journal.replay``
accept the ``truncate`` kind: at the append site it simulates a
mid-append parent kill (the torn record reaches the file, then the
batch aborts); at the replay site it simulates losing an arbitrary
tail of the journal.  Both are swept by the chaos suite and the
parent-kill harness (``tests/property/test_journal_chaos.py``).
"""

from __future__ import annotations

import copy
import json
import os
import sys
from typing import IO, Callable

from repro.errors import JournalError, ReproError
from repro.faults import plan as _faults
from repro.obs import metrics as _obs
from repro.obs.ledger import fingerprint
from repro.runtime.batch import (
    REASON_BREAKER_OPEN,
    REASON_WORKER_CRASH,
    TaskOutcome,
)
from repro.runtime.breaker import BreakerBoard
from repro.runtime.manifest import Manifest, Task
from repro.runtime.retry import RetryPolicy

#: Bump on any incompatible change to the journal record layout.
JOURNAL_VERSION = 1

#: The ``schema`` discriminator stamped on every journal meta record.
JOURNAL_SCHEMA = "repro.runtime.journal"

_SITE_APPEND = _faults.register_site(
    "runtime.journal.append", "runtime",
    "journal record append, between serialization and the write "
    "(truncate = a mid-append parent kill: the torn record reaches "
    "the file and the batch aborts; --resume recovers)",
    kinds=_faults.INPUT_KINDS)
_SITE_REPLAY = _faults.register_site(
    "runtime.journal.replay", "runtime",
    "journal read-back on --resume, after the raw bytes are loaded "
    "(truncate = losing an arbitrary tail of the journal)",
    kinds=_faults.INPUT_KINDS)

_RECORD_KINDS = ("meta", "intent", "result")


def _warn_stderr(message: str) -> None:
    print(f"xnf batch: {message}", file=sys.stderr)


class ReplayedOutcome:
    """A completed task's outcome, reconstructed from its journal
    record.  Duck-types the slice of :class:`TaskOutcome` that
    :meth:`BatchRunner.summarize` consumes, so replayed and live
    outcomes merge into one summary with identical bytes."""

    __slots__ = ("index", "id", "op", "reason", "signature", "payload")

    def __init__(self, record: dict) -> None:
        self.index: int = record["index"]
        self.id: str = record["id"]
        self.op: str = record["op"]
        self.reason: str | None = record["reason"]
        self.signature: str | None = record["signature"]
        self.payload: dict = record["payload"]

    @property
    def status(self) -> str:
        return self.payload["status"]

    @property
    def ok(self) -> bool:
        return self.payload["status"] == "ok"

    @property
    def attempts(self) -> int:
        return self.payload["attempts"]

    @property
    def failures(self) -> list[dict]:
        return self.payload.get("failures", [])

    @property
    def disagreements(self) -> list[dict]:
        return self.payload.get("disagreements", [])

    def to_json(self) -> dict:
        return copy.deepcopy(self.payload)

    def dead_letter(self) -> dict:
        assert self.status == "dead-letter" and self.failures
        return {"id": self.id, "op": self.op,
                "reason": self.reason, "signature": self.signature,
                "attempts": self.attempts,
                "failures": copy.deepcopy(self.failures),
                "error_chain": copy.deepcopy(self.failures[-1]["chain"])}


def meta_record(manifest: Manifest, policy: RetryPolicy,
                board: BreakerBoard, ensemble_mode: str) -> dict:
    """The journal's first record: everything that shapes summary
    bytes, pinned.  Fully deterministic — no run id, no timestamp —
    so identical invocations write identical journals."""
    count = manifest.task_count
    return {
        "record": "meta",
        "schema": JOURNAL_SCHEMA,
        "version": JOURNAL_VERSION,
        "manifest": manifest.source,
        # The same identity fingerprint the run ledger stamps on its
        # records, so journal and ledger agree on what "same batch"
        # means.
        "manifest_sha": fingerprint(
            f"{manifest.source}:{manifest.seed}:{count}"),
        "seed": manifest.seed,
        "count": count,
        "ensemble": ensemble_mode,
        "policy": {"retries": policy.retries,
                   "backoff_base_ms": policy.backoff_base_ms,
                   "multiplier": policy.multiplier,
                   "seed": policy.seed},
        "breaker": {"threshold": board.threshold,
                    "probe_interval": board.probe_interval},
    }


def _structural(message: str) -> JournalError:
    return JournalError(f"journal: {message}")


def _check_record(record: object, line_no: int) -> dict:
    if not isinstance(record, dict):
        raise _structural(f"line {line_no}: record must be an object")
    kind = record.get("record")
    if kind not in _RECORD_KINDS:
        raise _structural(
            f"line {line_no}: record kind must be one of "
            f"{list(_RECORD_KINDS)}, got {kind!r}")
    if kind == "meta":
        if line_no != 1:
            raise _structural(
                f"line {line_no}: meta record only allowed on line 1")
        return record
    index = record.get("index")
    if not isinstance(index, int) or isinstance(index, bool) \
            or index < 0:
        raise _structural(
            f"line {line_no}: index must be a non-negative integer, "
            f"got {index!r}")
    if kind == "result" and not isinstance(record.get("payload"), dict):
        raise _structural(
            f"line {line_no}: result record must carry a payload "
            f"object")
    return record


class _JournalState:
    """What one read of a journal file found."""

    def __init__(self) -> None:
        self.meta: dict | None = None
        self.intents: set[int] = set()
        self.results: dict[int, dict] = {}
        self.good_bytes: int = 0
        self.torn: bool = False


def read_journal(path: str) -> _JournalState:
    """Parse a journal file, tolerating exactly one torn trailing line.

    ``good_bytes`` is the byte offset of the end of the last complete,
    parseable record — the truncation point a resume restores the file
    to before appending.  Journal content is ASCII (``json.dumps``
    with the default ``ensure_ascii``), so character offsets are byte
    offsets.
    """
    state = _JournalState()
    try:
        with open(path, "r", encoding="utf-8") as stream:
            text = stream.read()
    except OSError as error:
        raise _structural(f"cannot read {path}: {error}") from error
    if _faults.active:
        # An injected tear: recover exactly as if the file really lost
        # its tail (the resume truncates to the surviving prefix).
        text = _faults.mangle(_SITE_REPLAY, text)
    offset = 0
    line_no = 0
    for line in text.splitlines(keepends=True):
        line_no += 1
        if not line.endswith("\n"):
            # A trailing chunk without its newline: the torn-append
            # crash window.  Everything before it is intact.
            state.torn = True
            break
        if line.strip() == "":
            offset += len(line)
            continue
        try:
            record = _check_record(json.loads(line), line_no)
        except ValueError as error:
            # A *complete* line that does not parse was not torn by a
            # crash — single-write appends cannot leave one.
            raise _structural(
                f"line {line_no}: malformed record: {error}") from error
        if record["record"] == "meta":
            state.meta = record
        elif record["record"] == "intent":
            state.intents.add(record["index"])
        else:
            index = record["index"]
            if index in state.results:
                raise _structural(
                    f"line {line_no}: duplicate result for task "
                    f"index {index}")
            state.results[index] = record
        offset += len(line)
    if state.meta is None and (state.intents or state.results):
        raise _structural("first record must be the meta record")
    state.good_bytes = offset
    return state


def _verify_meta(found: dict, expected: dict, path: str) -> None:
    """Field-by-field meta check: every key affects summary bytes."""
    for key in expected:
        if found.get(key) != expected[key]:
            raise _structural(
                f"{path}: {key} mismatch — journal has "
                f"{found.get(key)!r}, this invocation expects "
                f"{expected[key]!r}; the journal cannot apply to "
                f"this batch")


class BatchJournal:
    """The write-ahead journal of one ``xnf batch`` run.

    Build via :func:`open_journal`.  The runner calls :meth:`intent`
    before dispatching a task and :meth:`result` when its terminal
    outcome lands; both append one fsync'd line.  On resume,
    :attr:`completed_indices` / :meth:`completed_outcomes` carry the
    replayed state and :meth:`replay_board` reconstructs the breaker
    board.
    """

    def __init__(self, path: str, stream: IO[str], *,
                 completed: dict[int, ReplayedOutcome] | None = None,
                 pending_intents: frozenset[int] = frozenset(),
                 fsync: bool = True) -> None:
        self.path = path
        self._stream = stream
        self._fsync = fsync
        self._completed = dict(completed or {})
        #: Indices that had an intent but no result when the journal
        #: was read back: the in-flight set at the moment of death.
        self._pending_intents = set(pending_intents)
        self._board_replayed = False
        self.appended = 0
        self.replayed = 0
        self.skipped = len(self._completed)
        if _obs.enabled and self.skipped:
            _obs.inc("runtime.journal.skipped", self.skipped)

    # -- durability ----------------------------------------------------

    def _append(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        if _faults.active:
            line = _faults.mangle(_SITE_APPEND, line)
        # One write of one full line: a real crash between write and
        # fsync can only lose or tear the *trailing* record, which
        # resume truncates.  (Buffered partial flushes are why the
        # write must be a single call.)
        self._stream.write(line)
        self._stream.flush()
        if self._fsync:
            os.fsync(self._stream.fileno())
        if not line.endswith("\n"):
            # The injected mid-append kill: the torn record is on disk
            # and this process must stop appending past the hole.
            raise _structural(
                f"{self.path}: torn append (record did not reach the "
                f"file intact); re-run with --resume to recover")
        self.appended += 1
        if _obs.enabled:
            _obs.inc("runtime.journal.appended")

    # -- the runner-facing seam ----------------------------------------

    @property
    def completed_indices(self) -> frozenset[int]:
        return frozenset(self._completed)

    @property
    def in_flight(self) -> int:
        """How many tasks had an intent but no result on read-back."""
        return len(self._pending_intents)

    def completed_outcomes(self) -> dict[int, ReplayedOutcome]:
        return dict(self._completed)

    def intent(self, index: int, task: Task) -> None:
        if index in self._pending_intents:
            # This exact task already has an intent on file from the
            # interrupted run: it is being re-dispatched, not newly
            # dispatched, and the journal already says so.
            self.replayed += 1
            if _obs.enabled:
                _obs.inc("runtime.journal.replayed")
            return
        self._append({"record": "intent", "index": index,
                      "id": task.id})

    def result(self, index: int, outcome: TaskOutcome) -> None:
        task = outcome.task
        try:
            dtd_sha = fingerprint(task.load_dtd_text())
        except (ReproError, OSError):
            dtd_sha = None
        try:
            fds_sha = fingerprint(task.load_fds_text())
        except (ReproError, OSError):
            fds_sha = None
        self._append({"record": "result", "index": index,
                      "id": task.id, "op": task.op,
                      "dtd_sha": dtd_sha, "fds_sha": fds_sha,
                      "reason": outcome.reason,
                      "signature": outcome.signature,
                      "payload": outcome.to_json()})

    def stats(self) -> dict:
        """Journal state for heartbeats: monotone counters only."""
        return {"appended": self.appended, "replayed": self.replayed,
                "skipped": self.skipped}

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()

    # -- breaker reconstruction ----------------------------------------

    def replay_board(self, board: BreakerBoard) -> None:
        """Replay the journaled outcomes' breaker traffic onto
        ``board``, in manifest order.

        Mirrors ``BatchRunner._run_task_core`` exactly: each recorded
        failure implies the calls the serial runner made at the time
        (``allows_retries`` per retried attempt, then the terminal
        ``record_skip`` / ``record_failure`` / ``record_success``), so
        a serial resume reconstructs the board byte-for-byte — even
        through open/half-open transitions.  ``worker_crash`` outcomes
        are skipped: their traffic went to the pool's private crash
        board, never this one.
        """
        if self._board_replayed:
            return
        self._board_replayed = True
        for index in sorted(self._completed):
            outcome = self._completed[index]
            failures = outcome.failures
            if not failures:
                continue
            if outcome.reason == REASON_WORKER_CRASH:
                continue
            for failure in failures[:-1]:
                # Every non-final failure was followed by a retry the
                # breaker admitted.
                board.get(failure["signature"]).allows_retries()
            last = failures[-1]
            breaker = board.get(last["signature"])
            if outcome.ok:
                # Success after failures: the final failed attempt was
                # also admitted, then the success closed the breaker.
                breaker.allows_retries()
                breaker.record_success()
            elif outcome.reason == REASON_BREAKER_OPEN:
                breaker.allows_retries()
                breaker.record_skip()
            else:
                breaker.record_failure()


def open_journal(path: str, *, manifest: Manifest,
                 policy: RetryPolicy, board: BreakerBoard,
                 ensemble_mode: str = "off", resume: bool = False,
                 fsync: bool = True,
                 warn: Callable[[str], None] = _warn_stderr,
                 ) -> BatchJournal:
    """Open (and on ``resume``, replay) the journal at ``path``.

    Fresh runs truncate the file and write the meta record.  Resumes
    read the file back, chop a torn trailing record (counted warning,
    physical truncate to the last good byte), verify the meta record
    against this invocation, and return a journal pre-loaded with the
    completed outcomes and in-flight intents.  A resume against a
    missing or record-less file degrades to a fresh run with a
    warning — the parent may have died before the first append.
    """
    expected = meta_record(manifest, policy, board, ensemble_mode)
    if not resume:
        try:
            stream = open(path, "w", encoding="utf-8")
        except OSError as error:
            raise _structural(
                f"cannot open {path}: {error}") from error
        journal = BatchJournal(path, stream, fsync=fsync)
        journal._append(expected)
        return journal

    if os.path.exists(path):
        state = read_journal(path)
    else:
        warn(f"journal {path} does not exist; starting fresh")
        state = _JournalState()
    if state.torn:
        warn(f"journal {path}: torn trailing record truncated "
             f"(mid-append crash); resuming from the last intact "
             f"record")
        if _obs.enabled:
            _obs.inc("runtime.journal.torn")
    if state.meta is None:
        if os.path.exists(path):
            warn(f"journal {path} has no meta record; starting fresh")
        try:
            stream = open(path, "w", encoding="utf-8")
        except OSError as error:
            raise _structural(
                f"cannot open {path}: {error}") from error
        journal = BatchJournal(path, stream, fsync=fsync)
        journal._append(expected)
        return journal
    _verify_meta(state.meta, expected, path)
    completed = {index: ReplayedOutcome(record)
                 for index, record in state.results.items()}
    pending = frozenset(state.intents - set(state.results))
    try:
        # Physically drop the torn tail before appending past it, so
        # the journal never holds a record-inside-a-record splice.
        stream = open(path, "r+", encoding="utf-8")
        stream.truncate(state.good_bytes)
        stream.seek(0, os.SEEK_END)
    except OSError as error:
        raise _structural(f"cannot open {path}: {error}") from error
    return BatchJournal(path, stream, completed=completed,
                        pending_intents=pending, fsync=fsync)
