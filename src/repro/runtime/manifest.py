"""Batch manifests: many ``(D, Σ)`` tasks in one declarative file.

A manifest is a JSON document naming the tasks of one batch run::

    {
      "schema": "repro.runtime.manifest",
      "version": 1,
      "defaults": {"engine": "auto", "max_steps": 200000, "seed": 0},
      "tasks": [
        {"id": "u-implies", "op": "implies",
         "dtd": "specs/university.dtd", "fds": "specs/university.fds",
         "fd": "courses.course.@cno -> courses.course"},
        {"id": "u-check", "op": "check",
         "dtd_text": "<!ELEMENT db (a*)> ...", "fds_text": "db.a.@x -> db.a"}
      ]
    }

Each task runs one of the paper's three central decision procedures:

* ``"implies"`` — the FD implication query ``(D, Σ) |- fd`` (Section 7);
* ``"check"``   — the XNF test (Definition 8 / Proposition 10);
* ``"normalize"`` — the Figure 4 decomposition algorithm.

DTD and FD inputs come either inline (``dtd_text`` / ``fds_text``) or
from files (``dtd`` / ``fds``, resolved relative to the manifest's own
directory so a manifest travels with its spec corpus).  ``defaults``
supplies per-task fallbacks: the implication ``engine``, the
:mod:`repro.guard` budget limits (``timeout`` / ``max_steps`` /
``max_branches`` / ``max_nodes``), and the batch ``seed`` feeding the
retry policy's deterministic backoff jitter.

Validation is strict and fails whole-manifest (a typo'd operation in
task 37 should stop the batch before task 1 runs): every problem
raises :class:`~repro.errors.ManifestError`, which the CLI maps to
exit code 2 — the manifest, not the specs it names, is what cannot be
used.  Reading a *named spec file* lazily at execution time, by
contrast, is a per-task failure handled by the batch runner.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path as FilePath
from typing import Iterable, Mapping

from repro.errors import ManifestError

#: Bump on any incompatible change to the JSON layout.
MANIFEST_VERSION = 1

#: The ``schema`` discriminator expected in every manifest file.
MANIFEST_SCHEMA = "repro.runtime.manifest"

#: The operations a task may request.
OPERATIONS = ("implies", "check", "normalize")

#: Per-task guard-budget knobs accepted in ``defaults`` and per task.
_BUDGET_KEYS = ("timeout", "max_steps", "max_branches", "max_nodes")

_ENGINES = ("auto", "closure", "chase", "brute", "ensemble")


@dataclass(frozen=True)
class Task:
    """One unit of batch work, fully resolved against the defaults."""

    id: str
    op: str
    dtd_text: str | None = None
    dtd_path: str | None = None
    fds_text: str | None = None
    fds_path: str | None = None
    fd: str | None = None
    root: str | None = None
    engine: str = "auto"
    timeout: float | None = None
    max_steps: int | None = None
    max_branches: int | None = None
    max_nodes: int | None = None

    def budget_kwargs(self) -> dict:
        """The :func:`repro.guard.limits` kwargs for this task."""
        return {"deadline": self.timeout, "max_steps": self.max_steps,
                "max_branches": self.max_branches,
                "max_nodes": self.max_nodes}

    def load_dtd_text(self) -> str:
        """The DTD source (inline, or read from the named file)."""
        if self.dtd_text is not None:
            return self.dtd_text
        assert self.dtd_path is not None
        return FilePath(self.dtd_path).read_text()

    def load_fds_text(self) -> str:
        """The FD lines (inline, from the named file, or empty)."""
        if self.fds_text is not None:
            return self.fds_text
        if self.fds_path is not None:
            return FilePath(self.fds_path).read_text()
        return ""


@dataclass
class Manifest:
    """A validated batch manifest."""

    tasks: list[Task]
    seed: int = 0
    source: str = "<inline>"
    defaults: dict = field(default_factory=dict)


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ManifestError(message)


def _check_budget(raw: Mapping, where: str) -> dict:
    """Extract and type-check the budget knobs of one mapping."""
    budget: dict = {}
    for key in _BUDGET_KEYS:
        value = raw.get(key)
        if value is None:
            continue
        _require(isinstance(value, (int, float))
                 and not isinstance(value, bool) and value > 0,
                 f"{where}: {key} must be a positive number, "
                 f"got {value!r}")
        budget[key] = float(value) if key == "timeout" else int(value)
    return budget


def _build_task(raw: object, index: int, defaults: Mapping,
                base_dir: FilePath) -> Task:
    where = f"task #{index}"
    _require(isinstance(raw, dict), f"{where}: must be an object")
    assert isinstance(raw, dict)
    task_id = raw.get("id", f"task-{index:04d}")
    _require(isinstance(task_id, str) and task_id.strip() != "",
             f"{where}: id must be a non-empty string")
    where = f"task {task_id!r}"
    op = raw.get("op")
    _require(op in OPERATIONS,
             f"{where}: op must be one of {list(OPERATIONS)}, "
             f"got {op!r}")

    dtd_text = raw.get("dtd_text")
    dtd_file = raw.get("dtd")
    _require((dtd_text is None) != (dtd_file is None),
             f"{where}: exactly one of dtd / dtd_text is required")
    if dtd_text is not None:
        _require(isinstance(dtd_text, str),
                 f"{where}: dtd_text must be a string")
    dtd_path = None
    if dtd_file is not None:
        _require(isinstance(dtd_file, str),
                 f"{where}: dtd must be a path string")
        dtd_path = str(base_dir / dtd_file)

    fds_text = raw.get("fds_text")
    fds_file = raw.get("fds")
    _require(fds_text is None or fds_file is None,
             f"{where}: at most one of fds / fds_text is allowed")
    if fds_text is not None:
        _require(isinstance(fds_text, str),
                 f"{where}: fds_text must be a string")
    fds_path = None
    if fds_file is not None:
        _require(isinstance(fds_file, str),
                 f"{where}: fds must be a path string")
        fds_path = str(base_dir / fds_file)

    fd = raw.get("fd")
    if op == "implies":
        _require(isinstance(fd, str) and fd.strip() != "",
                 f"{where}: op \"implies\" requires a non-empty fd "
                 "query string")
    else:
        _require(fd is None,
                 f"{where}: fd is only meaningful for op \"implies\"")

    root = raw.get("root", defaults.get("root"))
    _require(root is None or isinstance(root, str),
             f"{where}: root must be a string")
    engine = raw.get("engine", defaults.get("engine", "auto"))
    _require(engine in _ENGINES,
             f"{where}: engine must be one of {list(_ENGINES)}, "
             f"got {engine!r}")

    budget = dict(_check_budget(defaults, "defaults"))
    budget.update(_check_budget(raw, where))
    return Task(id=task_id, op=op, dtd_text=dtd_text, dtd_path=dtd_path,
                fds_text=fds_text, fds_path=fds_path, fd=fd, root=root,
                engine=engine, timeout=budget.get("timeout"),
                max_steps=budget.get("max_steps"),
                max_branches=budget.get("max_branches"),
                max_nodes=budget.get("max_nodes"))


def from_payload(payload: object, *, source: str = "<inline>",
                 base_dir: str | FilePath = ".") -> Manifest:
    """Validate a decoded manifest object into a :class:`Manifest`."""
    _require(isinstance(payload, dict),
             f"{source}: manifest must be a JSON object")
    assert isinstance(payload, dict)
    _require(payload.get("schema") == MANIFEST_SCHEMA,
             f"{source}: not a batch manifest (missing "
             f"schema={MANIFEST_SCHEMA!r} discriminator)")
    version = payload.get("version")
    _require(version == MANIFEST_VERSION,
             f"{source}: manifest schema version {version!r} is not "
             f"supported (expected {MANIFEST_VERSION})")
    defaults = payload.get("defaults", {})
    _require(isinstance(defaults, dict),
             f"{source}: defaults must be an object")
    seed = defaults.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             f"{source}: defaults.seed must be an integer")
    raw_tasks = payload.get("tasks")
    _require(isinstance(raw_tasks, list),
             f"{source}: tasks must be an array")
    assert isinstance(raw_tasks, list)
    base = FilePath(base_dir)
    tasks = [_build_task(raw, index, defaults, base)
             for index, raw in enumerate(raw_tasks)]
    seen: set[str] = set()
    for task in tasks:
        _require(task.id not in seen, f"duplicate task id {task.id!r}")
        seen.add(task.id)
    return Manifest(tasks=tasks, seed=seed, source=source,
                    defaults=dict(defaults))


def load(path: str | FilePath) -> Manifest:
    """Read and validate a manifest file.

    Relative ``dtd`` / ``fds`` paths inside the manifest resolve
    against the manifest's own directory.
    """
    path = FilePath(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ManifestError(
            f"cannot read manifest {path}: {error}") from error
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ManifestError(
            f"manifest {path} is not valid JSON: {error}") from error
    return from_payload(payload, source=str(path), base_dir=path.parent)


def build(tasks: Iterable[Mapping], *, defaults: Mapping | None = None,
          base_dir: str | FilePath = ".") -> Manifest:
    """An in-memory manifest from plain dicts (tests, corpus tools)."""
    payload = {"schema": MANIFEST_SCHEMA, "version": MANIFEST_VERSION,
               "defaults": dict(defaults or {}), "tasks": list(tasks)}
    return from_payload(payload, base_dir=base_dir)
