"""Batch manifests: many ``(D, Σ)`` tasks in one declarative file.

A manifest is a JSON document naming the tasks of one batch run::

    {
      "schema": "repro.runtime.manifest",
      "version": 1,
      "defaults": {"engine": "auto", "max_steps": 200000, "seed": 0},
      "tasks": [
        {"id": "u-implies", "op": "implies",
         "dtd": "specs/university.dtd", "fds": "specs/university.fds",
         "fd": "courses.course.@cno -> courses.course"},
        {"id": "u-check", "op": "check",
         "dtd_text": "<!ELEMENT db (a*)> ...", "fds_text": "db.a.@x -> db.a"}
      ]
    }

Each task runs one of the paper's three central decision procedures:

* ``"implies"`` — the FD implication query ``(D, Σ) |- fd`` (Section 7);
* ``"check"``   — the XNF test (Definition 8 / Proposition 10);
* ``"normalize"`` — the Figure 4 decomposition algorithm.

DTD and FD inputs come either inline (``dtd_text`` / ``fds_text``) or
from files (``dtd`` / ``fds``, resolved relative to the manifest's own
directory so a manifest travels with its spec corpus).  ``defaults``
supplies per-task fallbacks: the implication ``engine``, the
:mod:`repro.guard` budget limits (``timeout`` / ``max_steps`` /
``max_branches`` / ``max_nodes``), and the batch ``seed`` feeding the
retry policy's deterministic backoff jitter.

Validation is strict and fails whole-manifest (a typo'd operation in
task 37 should stop the batch before task 1 runs): every problem
raises :class:`~repro.errors.ManifestError`, which the CLI maps to
exit code 2 — the manifest, not the specs it names, is what cannot be
used.  Reading a *named spec file* lazily at execution time, by
contrast, is a per-task failure handled by the batch runner.

**Streaming manifests** (``*.jsonl``): a 100k-task corpus manifest
does not fit comfortably in memory as one JSON array, so ``.jsonl``
files hold one header object on the first line — the usual ``schema``
/ ``version`` / ``defaults`` envelope plus a mandatory ``count`` —
followed by one task object per line::

    {"schema": "repro.runtime.manifest", "version": 1,
     "defaults": {"seed": 7}, "count": 100000}
    {"id": "corpus-000000", "op": "check", "dtd_text": "...", ...}
    ...

:func:`load` returns a :class:`StreamingManifest` for them: tasks are
validated and yielded one at a time on every :meth:`~Manifest.iter_tasks`
pass, never materialized as a list.  The strict-validation contract is
necessarily weaker here — a bad task line is only discovered when the
iterator reaches it (still a :class:`~repro.errors.ManifestError`,
still exit code 2; the header and ``count`` are checked eagerly).
Consumers that can stream should prefer :meth:`~Manifest.iter_tasks`
and :attr:`~Manifest.task_count` over the ``tasks`` list — the batch
runner and the pool backend do.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path as FilePath
from typing import Callable, Iterable, Iterator, Mapping

from repro.errors import ManifestError

#: Bump on any incompatible change to the JSON layout.
MANIFEST_VERSION = 1

#: The ``schema`` discriminator expected in every manifest file.
MANIFEST_SCHEMA = "repro.runtime.manifest"

#: The operations a task may request.
OPERATIONS = ("implies", "check", "normalize")

#: Per-task guard-budget knobs accepted in ``defaults`` and per task.
_BUDGET_KEYS = ("timeout", "max_steps", "max_branches", "max_nodes")

_ENGINES = ("auto", "closure", "chase", "brute", "ensemble")


@dataclass(frozen=True)
class Task:
    """One unit of batch work, fully resolved against the defaults."""

    id: str
    op: str
    dtd_text: str | None = None
    dtd_path: str | None = None
    fds_text: str | None = None
    fds_path: str | None = None
    fd: str | None = None
    root: str | None = None
    engine: str = "auto"
    timeout: float | None = None
    max_steps: int | None = None
    max_branches: int | None = None
    max_nodes: int | None = None

    def budget_kwargs(self) -> dict:
        """The :func:`repro.guard.limits` kwargs for this task."""
        return {"deadline": self.timeout, "max_steps": self.max_steps,
                "max_branches": self.max_branches,
                "max_nodes": self.max_nodes}

    def load_dtd_text(self) -> str:
        """The DTD source (inline, or read from the named file)."""
        if self.dtd_text is not None:
            return self.dtd_text
        assert self.dtd_path is not None
        return FilePath(self.dtd_path).read_text()

    def load_fds_text(self) -> str:
        """The FD lines (inline, from the named file, or empty)."""
        if self.fds_text is not None:
            return self.fds_text
        if self.fds_path is not None:
            return FilePath(self.fds_path).read_text()
        return ""


@dataclass
class Manifest:
    """A validated batch manifest.

    Consumers that can stream should use :meth:`iter_tasks` and
    :attr:`task_count` instead of the ``tasks`` list: the eager
    manifest satisfies both trivially, and :class:`StreamingManifest`
    satisfies them without ever materializing the task list.
    """

    tasks: list[Task]
    seed: int = 0
    source: str = "<inline>"
    defaults: dict = field(default_factory=dict)

    @property
    def task_count(self) -> int:
        """How many tasks one :meth:`iter_tasks` pass will yield."""
        return len(self.tasks)

    def iter_tasks(self) -> Iterator[Task]:
        """Yield every task in manifest order (re-iterable)."""
        return iter(self.tasks)

    def iter_indexed(self, skip: frozenset[int] = frozenset(),
                     ) -> Iterator[tuple[int, Task]]:
        """Yield ``(index, task)`` pairs, omitting indices in ``skip``.

        The index is the task's stable position in manifest order —
        the identity the batch journal keys intent/result records on,
        so a ``--resume`` can skip completed work without trusting
        anything but the manifest's ordering.
        """
        for index, task in enumerate(self.tasks):
            if index in skip:
                continue
            yield index, task


class StreamingManifest(Manifest):
    """A manifest whose tasks are validated and yielded lazily.

    Built from a factory returning a fresh raw-task-dict iterator per
    pass, so the manifest is re-iterable (the serial backend walks it
    once; a serial-vs-parallel comparison walks it twice).  Task
    validation happens *during* iteration: an invalid task raises
    :class:`~repro.errors.ManifestError` at the point it is reached,
    and an iteration that ends with a different number of tasks than
    the declared ``count`` raises as well — the zero-task-loss
    accounting downstream depends on the total being honest.

    Accessing ``.tasks`` materializes the whole list (supported for
    small manifests and tests; the 100k-task path never touches it).
    """

    def __init__(self, raw_factory: Callable[[], Iterator[object]],
                 count: int, *, seed: int = 0, source: str = "<inline>",
                 defaults: Mapping | None = None,
                 base_dir: str | FilePath = ".") -> None:
        defaults = dict(defaults or {})
        super().__init__(tasks=[], seed=seed, source=source,
                         defaults=defaults)
        _require(isinstance(count, int) and not isinstance(count, bool)
                 and count >= 0,
                 f"{source}: count must be a non-negative integer, "
                 f"got {count!r}")
        self._raw_factory = raw_factory
        self._count = count
        self._base_dir = FilePath(base_dir)

    @property
    def task_count(self) -> int:
        return self._count

    def iter_tasks(self) -> Iterator[Task]:
        for _index, task in self.iter_indexed():
            yield task

    def iter_indexed(self, skip: frozenset[int] = frozenset(),
                     ) -> Iterator[tuple[int, Task]]:
        """Yield ``(index, task)``, never building skipped tasks.

        A journal resume over a 100k-task stream must not pay
        validation and :class:`Task` construction for work that is
        already done: a skipped index's raw line is scanned (the
        declared-count contract stays honest) but neither validated
        nor materialized.  The duplicate-id check therefore only spans
        the tasks actually yielded — the skipped prefix was validated
        by the run that journaled it.
        """
        seen: set[str] = set()
        yielded = 0
        for index, raw in enumerate(self._raw_factory()):
            yielded += 1
            _require(yielded <= self._count,
                     f"{self.source}: stream yielded more than the "
                     f"declared count of {self._count} tasks")
            if index in skip:
                continue
            task = _build_task(raw, index, self.defaults,
                               self._base_dir)
            _require(task.id not in seen,
                     f"duplicate task id {task.id!r}")
            seen.add(task.id)
            yield index, task
        _require(yielded == self._count,
                 f"{self.source}: stream yielded {yielded} task(s), "
                 f"header declared count={self._count}")

    @property
    def tasks(self) -> list[Task]:  # type: ignore[override]
        return list(self.iter_tasks())

    @tasks.setter
    def tasks(self, value: list[Task]) -> None:
        # The dataclass __init__ of the base assigns tasks=[]; a
        # streaming manifest ignores it (tasks are derived).
        pass


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ManifestError(message)


def _check_budget(raw: Mapping, where: str) -> dict:
    """Extract and type-check the budget knobs of one mapping."""
    budget: dict = {}
    for key in _BUDGET_KEYS:
        value = raw.get(key)
        if value is None:
            continue
        _require(isinstance(value, (int, float))
                 and not isinstance(value, bool) and value > 0,
                 f"{where}: {key} must be a positive number, "
                 f"got {value!r}")
        budget[key] = float(value) if key == "timeout" else int(value)
    return budget


def _build_task(raw: object, index: int, defaults: Mapping,
                base_dir: FilePath) -> Task:
    where = f"task #{index}"
    _require(isinstance(raw, dict), f"{where}: must be an object")
    assert isinstance(raw, dict)
    task_id = raw.get("id", f"task-{index:04d}")
    _require(isinstance(task_id, str) and task_id.strip() != "",
             f"{where}: id must be a non-empty string")
    where = f"task {task_id!r}"
    op = raw.get("op")
    _require(op in OPERATIONS,
             f"{where}: op must be one of {list(OPERATIONS)}, "
             f"got {op!r}")

    dtd_text = raw.get("dtd_text")
    dtd_file = raw.get("dtd")
    _require((dtd_text is None) != (dtd_file is None),
             f"{where}: exactly one of dtd / dtd_text is required")
    if dtd_text is not None:
        _require(isinstance(dtd_text, str),
                 f"{where}: dtd_text must be a string")
    dtd_path = None
    if dtd_file is not None:
        _require(isinstance(dtd_file, str),
                 f"{where}: dtd must be a path string")
        dtd_path = str(base_dir / dtd_file)

    fds_text = raw.get("fds_text")
    fds_file = raw.get("fds")
    _require(fds_text is None or fds_file is None,
             f"{where}: at most one of fds / fds_text is allowed")
    if fds_text is not None:
        _require(isinstance(fds_text, str),
                 f"{where}: fds_text must be a string")
    fds_path = None
    if fds_file is not None:
        _require(isinstance(fds_file, str),
                 f"{where}: fds must be a path string")
        fds_path = str(base_dir / fds_file)

    fd = raw.get("fd")
    if op == "implies":
        _require(isinstance(fd, str) and fd.strip() != "",
                 f"{where}: op \"implies\" requires a non-empty fd "
                 "query string")
    else:
        _require(fd is None,
                 f"{where}: fd is only meaningful for op \"implies\"")

    root = raw.get("root", defaults.get("root"))
    _require(root is None or isinstance(root, str),
             f"{where}: root must be a string")
    engine = raw.get("engine", defaults.get("engine", "auto"))
    _require(engine in _ENGINES,
             f"{where}: engine must be one of {list(_ENGINES)}, "
             f"got {engine!r}")

    budget = dict(_check_budget(defaults, "defaults"))
    budget.update(_check_budget(raw, where))
    return Task(id=task_id, op=op, dtd_text=dtd_text, dtd_path=dtd_path,
                fds_text=fds_text, fds_path=fds_path, fd=fd, root=root,
                engine=engine, timeout=budget.get("timeout"),
                max_steps=budget.get("max_steps"),
                max_branches=budget.get("max_branches"),
                max_nodes=budget.get("max_nodes"))


def from_payload(payload: object, *, source: str = "<inline>",
                 base_dir: str | FilePath = ".") -> Manifest:
    """Validate a decoded manifest object into a :class:`Manifest`."""
    _require(isinstance(payload, dict),
             f"{source}: manifest must be a JSON object")
    assert isinstance(payload, dict)
    _require(payload.get("schema") == MANIFEST_SCHEMA,
             f"{source}: not a batch manifest (missing "
             f"schema={MANIFEST_SCHEMA!r} discriminator)")
    version = payload.get("version")
    _require(version == MANIFEST_VERSION,
             f"{source}: manifest schema version {version!r} is not "
             f"supported (expected {MANIFEST_VERSION})")
    defaults = payload.get("defaults", {})
    _require(isinstance(defaults, dict),
             f"{source}: defaults must be an object")
    seed = defaults.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             f"{source}: defaults.seed must be an integer")
    raw_tasks = payload.get("tasks")
    _require(isinstance(raw_tasks, list),
             f"{source}: tasks must be an array")
    assert isinstance(raw_tasks, list)
    base = FilePath(base_dir)
    tasks = [_build_task(raw, index, defaults, base)
             for index, raw in enumerate(raw_tasks)]
    seen: set[str] = set()
    for task in tasks:
        _require(task.id not in seen, f"duplicate task id {task.id!r}")
        seen.add(task.id)
    return Manifest(tasks=tasks, seed=seed, source=source,
                    defaults=dict(defaults))


def _check_header(payload: object, source: str) -> tuple[dict, int]:
    """Validate a ``.jsonl`` header line; returns (defaults, count)."""
    _require(isinstance(payload, dict),
             f"{source}: header must be a JSON object")
    assert isinstance(payload, dict)
    _require(payload.get("schema") == MANIFEST_SCHEMA,
             f"{source}: not a batch manifest (missing "
             f"schema={MANIFEST_SCHEMA!r} discriminator)")
    version = payload.get("version")
    _require(version == MANIFEST_VERSION,
             f"{source}: manifest schema version {version!r} is not "
             f"supported (expected {MANIFEST_VERSION})")
    defaults = payload.get("defaults", {})
    _require(isinstance(defaults, dict),
             f"{source}: defaults must be an object")
    seed = defaults.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             f"{source}: defaults.seed must be an integer")
    count = payload.get("count")
    _require(isinstance(count, int) and not isinstance(count, bool)
             and count >= 0,
             f"{source}: streaming manifests must declare a "
             f"non-negative integer task count in the header, "
             f"got {count!r}")
    return dict(defaults), count


def _load_jsonl(path: FilePath) -> StreamingManifest:
    """A lazy manifest over a ``.jsonl`` file (header validated now,
    tasks validated as they stream)."""
    source = str(path)
    try:
        with open(path) as handle:
            header_line = handle.readline()
    except OSError as error:
        raise ManifestError(
            f"cannot read manifest {path}: {error}") from error
    _require(header_line.strip() != "",
             f"{source}: empty manifest (expected a header line)")
    try:
        header = json.loads(header_line)
    except json.JSONDecodeError as error:
        raise ManifestError(f"{source}: header line is not valid "
                            f"JSON: {error}") from error
    defaults, count = _check_header(header, source)

    def raw_tasks() -> "Iterator[object]":
        with open(path) as handle:
            handle.readline()                     # skip the header
            for lineno, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError as error:
                    raise ManifestError(
                        f"{source}: line {lineno} is not valid JSON: "
                        f"{error}") from error

    return StreamingManifest(raw_tasks, count,
                             seed=defaults.get("seed", 0),
                             source=source, defaults=defaults,
                             base_dir=path.parent)


def load(path: str | FilePath) -> Manifest:
    """Read and validate a manifest file.

    Relative ``dtd`` / ``fds`` paths inside the manifest resolve
    against the manifest's own directory.  A ``.jsonl`` suffix selects
    the streaming loader (see the module docstring); everything else
    is read as one strictly validated JSON document.
    """
    path = FilePath(path)
    if path.suffix == ".jsonl":
        return _load_jsonl(path)
    try:
        text = path.read_text()
    except OSError as error:
        raise ManifestError(
            f"cannot read manifest {path}: {error}") from error
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as error:
        raise ManifestError(
            f"manifest {path} is not valid JSON: {error}") from error
    return from_payload(payload, source=str(path), base_dir=path.parent)


def stream(raw_tasks: Callable[[], Iterator[Mapping]], count: int, *,
           defaults: Mapping | None = None,
           base_dir: str | FilePath = ".",
           source: str = "<stream>") -> StreamingManifest:
    """An in-memory streaming manifest from a raw-task-dict factory.

    ``raw_tasks`` must return a *fresh* iterator per call (the
    manifest is re-iterable); ``count`` is the number of tasks every
    pass must yield.
    """
    defaults = dict(defaults or {})
    seed = defaults.get("seed", 0)
    _require(isinstance(seed, int) and not isinstance(seed, bool),
             f"{source}: defaults.seed must be an integer")
    return StreamingManifest(raw_tasks, count, seed=seed, source=source,
                             defaults=defaults, base_dir=base_dir)


def build(tasks: Iterable[Mapping], *, defaults: Mapping | None = None,
          base_dir: str | FilePath = ".") -> Manifest:
    """An in-memory manifest from plain dicts (tests, corpus tools)."""
    payload = {"schema": MANIFEST_SCHEMA, "version": MANIFEST_VERSION,
               "defaults": dict(defaults or {}), "tasks": list(tasks)}
    return from_payload(payload, base_dir=base_dir)
