"""``repro.runtime`` — the crash-tolerant batch execution layer.

Built in this order, each piece usable on its own:

* :mod:`~repro.runtime.manifest` — declarative batch manifests
  (validated strictly; :class:`~repro.errors.ManifestError` → exit 2),
  including the streaming ``.jsonl`` layout for 100k-task corpora;
* :mod:`~repro.runtime.retry` — transient/permanent classification and
  seeded exponential-backoff jitter (deterministic, replayable);
* :mod:`~repro.runtime.breaker` — per-failure-signature circuit
  breakers with count-based probing;
* :mod:`~repro.runtime.ensemble` — the differential engine oracle
  (``engine="ensemble"``), escalating contradictions as first-class
  records;
* :mod:`~repro.runtime.batch` — the runner tying them together under
  the zero-task-loss invariant, with dead-letter reports and a
  pluggable execution backend;
* :mod:`~repro.runtime.pool` — the supervised process-pool backend:
  parallel execution with crash detection, task requeue, centralized
  breaker arbitration, and a merged report byte-identical to the
  serial path on every run that opens no circuit breaker;
* :mod:`~repro.runtime.corpus` — seeded spec-corpus generation for
  chaos and acceptance runs (streamable at any size).

The CLI front door is ``xnf batch MANIFEST`` (see ``repro.cli``).
"""

from __future__ import annotations

from repro.runtime.batch import BatchRunner, SerialBackend, run_batch
from repro.runtime.breaker import BreakerBoard
from repro.runtime.manifest import Manifest, StreamingManifest, Task, load
from repro.runtime.pool import PoolBackend, resolve_workers
from repro.runtime.retry import RetryPolicy

__all__ = ["BatchRunner", "BreakerBoard", "Manifest", "PoolBackend",
           "RetryPolicy", "SerialBackend", "StreamingManifest", "Task",
           "load", "resolve_workers", "run_batch"]
