"""Crash-tolerant parallel batch execution over a supervised fork pool.

:class:`PoolBackend` plugs into :class:`~repro.runtime.batch.
BatchRunner` and fans manifest tasks out to ``N`` forked worker
processes.  The design goals, in priority order:

1. **No task is ever lost.**  The parent is the single source of truth
   for what is in flight: it hands each worker exactly one task at a
   time over a private duplex pipe and does not forget the assignment
   until the result message arrives.  A worker that dies — non-zero
   exit, ``SIGKILL``, a corrupted result pipe, a heartbeat stall —
   has its in-flight task requeued at the front of the queue, where
   the next idle worker (usually a different one — that is the
   work-stealing) picks it up.
2. **The merged report matches the serial path's bytes whenever no
   circuit breaker opens** — in particular on every clean run.
   Worker crashes are nondeterministic in *timing* (which attempt of
   which task a ``SIGKILL`` lands on depends on scheduling), so any
   trace of a *recovered* crash in the summary would break
   determinism.  The contract is therefore: a task that eventually
   succeeds (or dead-letters for its own in-task reasons) reports
   exactly what the serial backend would report — crash recovery is
   visible only in telemetry (``runtime.pool.*`` counters,
   :class:`PoolStats`, stderr).  Only a task that exhausts its *crash
   budget* surfaces in the summary, as a dead letter with reason
   ``worker_crash`` — and a task that deterministically kills every
   worker it lands on does so deterministically.  What parallelism
   cannot preserve is the serial *order* in which failures reach the
   shared breaker board, so once a breaker opens, probe-vs-skip
   decisions (``reason: breaker_open``) become scheduling-dependent.
   ``docs/ROBUSTNESS.md`` § "The determinism argument" states the
   exact scope.
3. **One breaker board, owned by the parent.**  Workers hold no
   :class:`~repro.runtime.breaker.BreakerBoard` of their own: every
   ``allows_retries`` verdict and every ``record_*`` event inside
   :meth:`BatchRunner._run_task` round-trips over the worker's pipe
   to the supervisor, which applies it to the *runner's* board — the
   same board the serial backend uses, the summary's ``breakers`` map
   reports, and a ``--heartbeat`` stream watches live.  A signature
   that keeps failing therefore opens its breaker across the whole
   pool, not per worker.  Crashes flow through the same machinery:
   each becomes a :class:`~repro.errors.WorkerCrash` (transient, per
   :func:`~repro.runtime.retry.is_transient`) judged by a dedicated
   :class:`~repro.runtime.retry.RetryPolicy` crash budget and a
   *separate* parent-side crash board keyed by crash signature
   (``crash:signal:SIGKILL``, ``crash:unpicklable-result``,
   ``crash:stall``, ...) that never reaches the summary — a recovered
   crash must stay invisible in the report.

Workers are forked (``multiprocessing.get_context("fork")``): the
manifest, spec corpus, and runner configuration are shared
copy-on-write, so dispatch messages carry only the task.  Each worker
re-initializes the metrics registry first thing
(:func:`repro.obs.metrics.reinit_after_fork` — the inherited lock may
have been held by a parent exporter thread at the instant of the
fork), resets the tracing module (sinks, span stack, context), and
swaps its inherited board copy for the :class:`_BreakerChannel`
proxy; its counters ship back as per-result deltas and its
histograms as one raw dump at shutdown, so the parent's merged
snapshot covers the whole pool.  When the parent is tracing, each
worker also inherits the parent's span context (with its ``worker``
id stamped in), buffers every finished span record, and ships the
buffer alongside each result; the supervisor rebases the records by
the hello-handshake clock offset and stitches them into its own
trace (:func:`repro.obs.trace.ingest_records`), so ``xnf batch
--workers N --trace FILE`` captures every worker's ``runtime.task``
subtree in one coherent forest.

A non-:class:`~repro.errors.ReproError` escaping a task inside a
worker is the same exception-safety breach it is on the serial path:
the worker reports the traceback and exits with
:data:`BREACH_EXITCODE`, and the parent tears the pool down and
crashes loudly.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
import traceback
import multiprocessing
from collections import deque
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace
from multiprocessing import connection as _mp_connection
from multiprocessing import get_context
from typing import TYPE_CHECKING, Iterator

from repro.errors import WorkerCrash
from repro.obs import metrics as _obs
from repro.obs import trace as _trace
from repro.runtime.breaker import BreakerBoard, failure_signature
from repro.runtime.manifest import Task
from repro.runtime.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.batch import BatchRunner, TaskOutcome

#: Exit code a worker uses to flag an exception-safety contract
#: breach (a non-ReproError escaped a task).  Mirrors BSD
#: ``EX_SOFTWARE``.
BREACH_EXITCODE = 70

#: Default number of worker deaths one task may survive before it is
#: dead-lettered with reason ``worker_crash``.
DEFAULT_CRASH_RETRIES = 3

#: Chaos actions :class:`PoolBackend` can inject into workers (test
#: hook; see ``chaos=``).
CHAOS_ACTIONS = ("sigkill", "sigterm", "exit", "garbage", "sigstop")

#: Chaos timings: before the task runs, or after it ran but before
#: the result is sent (forcing a re-execution on requeue).
CHAOS_TIMINGS = ("pre", "post")


def pool_available() -> bool:
    """Whether this platform supports the fork start method (the pool
    requires it: forked workers share the read-only spec corpus and
    receive unpickled runner state for free)."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def resolve_workers(value: str | int, *,
                    task_count: int | None = None) -> int:
    """Turn a ``--workers`` spec into a concrete worker count.

    ``"auto"`` means one worker per CPU core, never more than there
    are tasks; an explicit integer is respected as-is (still capped by
    the task count — idle workers would only be forked to be told to
    stop).  A resolved count of 1 is the caller's cue to use the
    serial backend instead.
    """
    if isinstance(value, str):
        if value == "auto":
            workers = os.cpu_count() or 1
        else:
            try:
                workers = int(value)
            except ValueError:
                raise ValueError(
                    f"workers must be 'auto' or a positive integer, "
                    f"got {value!r}") from None
    else:
        workers = value
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if task_count is not None:
        workers = max(1, min(workers, task_count))
    return workers


@dataclass
class PoolStats:
    """Supervision telemetry for one pool run (JSON-ready).

    Deliberately *outside* the batch summary: crash counts depend on
    nondeterministic kill timing, and the summary must stay
    byte-identical to the serial path.
    """

    workers: int = 0
    spawned: int = 0
    crashed: int = 0
    requeued: int = 0
    stolen: int = 0
    dead_lettered: int = 0
    stalls: int = 0
    #: Crash details in detection order, e.g. ``signal:SIGKILL``.
    crash_details: list[str] = field(default_factory=list)

    def to_json(self) -> dict:
        return {"workers": self.workers, "spawned": self.spawned,
                "crashed": self.crashed, "requeued": self.requeued,
                "stolen": self.stolen,
                "dead_lettered": self.dead_lettered,
                "stalls": self.stalls,
                "crash_details": list(self.crash_details)}


# -- worker side -------------------------------------------------------

class _BreakerChannel:
    """Worker-side stand-in for the runner's ``BreakerBoard``.

    Workers must not keep their own (forked, private) breaker state:
    a breaker that opens for one worker has to open for the whole
    pool, and the parent's board is what the summary and the
    heartbeat stream report.  So every decision is delegated:
    ``allows_retries`` round-trips to the supervisor for a verdict;
    ``record_*`` events are fire-and-forget.  Mid-task the parent
    sends a worker nothing except these verdicts (tasks are only
    dispatched to idle workers, ``stop`` only after the batch is
    done), so the reply is always the next incoming message.
    """

    def __init__(self, conn: _mp_connection.Connection,
                 send_lock: threading.Lock) -> None:
        self._conn = conn
        self._send_lock = send_lock

    def get(self, signature: str) -> "_BreakerProxy":
        return _BreakerProxy(signature, self)

    def ask(self, signature: str) -> bool:
        with self._send_lock:
            self._conn.send(("brk", "ask", signature))
        reply = self._conn.recv()
        if reply[0] != "brk-reply":  # pragma: no cover - protocol guard
            raise AssertionError(
                f"expected brk-reply, got {reply[0]!r}")
        return reply[1]

    def tell(self, op: str, signature: str) -> None:
        with self._send_lock:
            self._conn.send(("brk", op, signature))


class _BreakerProxy:
    """One signature's view of the parent board (see
    :class:`_BreakerChannel`); duck-types the slice of
    :class:`~repro.runtime.breaker.Breaker` that ``_run_task`` uses."""

    __slots__ = ("signature", "_channel")

    def __init__(self, signature: str,
                 channel: _BreakerChannel) -> None:
        self.signature = signature
        self._channel = channel

    def allows_retries(self) -> bool:
        return self._channel.ask(self.signature)

    def record_skip(self) -> None:
        self._channel.tell("skip", self.signature)

    def record_failure(self) -> None:
        self._channel.tell("failure", self.signature)

    def record_success(self) -> None:
        self._channel.tell("success", self.signature)


def _chaos_act(action: str, conn: _mp_connection.Connection,
               send_lock: threading.Lock) -> None:
    """Execute one injected chaos action inside the worker (test
    hook).  Every action ends this worker one way or another."""
    if action == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(3600)  # pragma: no cover - SIGKILL is immediate
    elif action == "sigterm":
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)
        time.sleep(3600)  # pragma: no cover - waiting for delivery
    elif action == "exit":
        os._exit(3)
    elif action == "garbage":
        # A complete, length-prefixed message whose payload is not a
        # valid pickle: the parent's recv() raises UnpicklingError,
        # which it must treat as a worker crash.  Then hang until the
        # supervisor kills us.
        with send_lock:
            conn.send_bytes(b"\x80\x04this is not a pickle")
        time.sleep(3600)
    elif action == "sigstop":
        # Freeze the whole process — heartbeat thread included, which
        # is what distinguishes a wedged worker from a slow task.  The
        # parent's stall detector must SIGKILL us.
        os.kill(os.getpid(), signal.SIGSTOP)
        time.sleep(3600)
    else:  # pragma: no cover - rejected at PoolBackend construction
        raise AssertionError(f"unknown chaos action {action!r}")


def _heartbeat_loop(conn: _mp_connection.Connection,
                    send_lock: threading.Lock,
                    interval: float) -> None:  # pragma: no cover - timing
    """Daemon thread: periodic liveness pings so the parent's stall
    detector can tell "slow task" from "wedged worker"."""
    while True:
        time.sleep(interval)
        try:
            with send_lock:
                conn.send(("hb",))
        except OSError:
            return


def _worker_main(worker_id: int, runner: "BatchRunner",
                 conn: _mp_connection.Connection,
                 heartbeat_interval: float,
                 trace_wire: dict | None = None) -> None:
    """The forked worker entrypoint: recv task, run it, send outcome.

    Fork hygiene first: a fresh metrics lock + registry (the
    inherited lock may be held by a parent thread), a reset tracing
    module (no inherited sinks — the parent owns the trace file
    descriptor — no inherited span stack, no inherited context), and
    the inherited board copy replaced by the :class:`_BreakerChannel`
    proxy (breaker state lives in the parent only).  The worker runs
    tasks through the *same* ``runner._run_task`` retry loop as the
    serial backend — that is what makes per-task records
    backend-independent.

    When the parent is tracing it passes ``trace_wire`` — the
    serialized ambient :class:`~repro.obs.trace.SpanContext` — and the
    worker re-installs it with its own ``worker`` id, buffers every
    finished span's record, and ships the buffer back with each
    result, where the supervisor stitches it into the parent trace.
    The first message on the pipe is always the clock handshake
    (``("hello", id, perf_counter())``): the parent measures the
    offset between the two ``perf_counter`` origins and rebases the
    shipped span timestamps with it.
    """
    _obs.reinit_after_fork()
    _trace.reinit_after_fork()
    span_buffer: list[dict] = []
    if trace_wire is not None:
        context = _trace.SpanContext.from_wire(trace_wire)
        _trace.set_context(_dc_replace(context, worker=worker_id))
        _trace.add_sink(lambda span_: span_buffer.append(
            span_.as_record()))
    send_lock = threading.Lock()
    runner.board = _BreakerChannel(conn, send_lock)
    with send_lock:
        conn.send(("hello", worker_id, time.perf_counter()))
    if heartbeat_interval > 0:
        threading.Thread(target=_heartbeat_loop,
                         args=(conn, send_lock, heartbeat_interval),
                         daemon=True).start()
    last_counters: dict[str, int] = {}
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent died: nothing to do
            os._exit(1)
        if message[0] == "stop":
            dump = _obs.dump_raw()
            # Counter increments already shipped as per-result deltas;
            # the bye carries only the unshipped remainder (plus the
            # histograms/timers, which ship nowhere else).
            dump["counters"] = {
                name: value - last_counters.get(name, 0)
                for name, value in dump["counters"].items()
                if value != last_counters.get(name, 0)}
            with send_lock:
                conn.send(("bye", dump))
            conn.close()
            os._exit(0)
        _kind, index, task, chaos = message
        if chaos is not None and chaos[1] == "pre":
            _chaos_act(chaos[0], conn, send_lock)
        try:
            outcome = runner._run_task(task)
        except BaseException:
            # Exception-safety breach (non-ReproError escaped): report
            # the traceback, then die with the breach exit code — the
            # parent crashes the batch loudly, like the serial path.
            try:
                with send_lock:
                    conn.send(("breach", traceback.format_exc()))
            except OSError:
                pass
            os._exit(BREACH_EXITCODE)
        if chaos is not None and chaos[1] == "post":
            _chaos_act(chaos[0], conn, send_lock)
        counters = _obs.counters_snapshot()
        delta = {name: value - last_counters.get(name, 0)
                 for name, value in counters.items()
                 if value != last_counters.get(name, 0)}
        last_counters = counters
        spans = span_buffer[:]
        span_buffer.clear()
        with send_lock:
            conn.send(("result", index, outcome, delta, spans))


# -- parent side -------------------------------------------------------

@dataclass
class _Assignment:
    """One manifest task's journey through the pool."""

    index: int
    task: Task
    #: Worker deaths this task has already survived.
    crash_attempts: int = 0
    #: Failure records (batch-summary shape) for those deaths, kept in
    #: case the crash budget runs out and we must dead-letter.
    crash_failures: list[dict] = field(default_factory=list)
    #: Signature of the most recent crash (breaker bookkeeping).
    crash_signature: str | None = None
    #: The worker that last held this task (steal accounting).
    last_worker: int | None = None


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("id", "proc", "conn", "assignment", "last_seen",
                 "kill_reason", "stopping", "clock_offset")

    def __init__(self, worker_id: int, proc, conn) -> None:
        self.id = worker_id
        self.proc = proc
        self.conn = conn
        self.assignment: _Assignment | None = None
        self.last_seen = time.monotonic()
        #: Set by the parent before it SIGKILLs the worker, so the
        #: death handler can report *why* (stall, corrupt pipe).
        self.kill_reason: str | None = None
        self.stopping = False
        #: perf_counter-origin difference measured from the worker's
        #: hello handshake; added to shipped span timestamps so the
        #: stitched trace shares one clock.
        self.clock_offset = 0.0


class PoolBackend:
    """Process-pool execution backend for :class:`BatchRunner`.

    ``workers``
        Target pool size (already resolved; see
        :func:`resolve_workers`).
    ``crash_retries``
        Worker deaths one task may survive before dead-lettering with
        reason ``worker_crash`` (its *crash budget*, separate from the
        in-task retry budget).
    ``stall_timeout``
        Seconds without any message from a worker with a task in
        flight before the supervisor declares it wedged and SIGKILLs
        it (crash detail ``stall``).  ``0`` disables stall detection.
    ``chaos``
        Test hook: ``{task_id: {crash_attempt: (action, timing)}}``
        injects a worker death around a specific dispatch — actions
        from :data:`CHAOS_ACTIONS`, timings from
        :data:`CHAOS_TIMINGS` (``post`` runs the task first, so the
        requeued task proves re-execution).

    After :meth:`run`, ``stats`` holds the :class:`PoolStats`.  The
    runner's own :class:`~repro.runtime.breaker.BreakerBoard` carries
    the in-task breaker state (the supervisor arbitrates every worker
    breaker decision on it), so :meth:`BatchRunner.summarize` reports
    it exactly as a serial run would.
    """

    name = "pool"

    #: Supervision loop tick (seconds): upper bound on how stale the
    #: stall detector's view can be; events wake the loop immediately.
    _TICK = 0.2

    def __init__(self, workers: int, *,
                 crash_retries: int = DEFAULT_CRASH_RETRIES,
                 stall_timeout: float = 0.0,
                 chaos: dict[str, dict[int, tuple[str, str]]]
                 | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if crash_retries < 0:
            raise ValueError(
                f"crash_retries must be >= 0, got {crash_retries}")
        if stall_timeout < 0:
            raise ValueError(
                f"stall_timeout must be >= 0, got {stall_timeout}")
        if chaos:
            for task_id, plan in chaos.items():
                for attempt, (action, timing) in plan.items():
                    if action not in CHAOS_ACTIONS:
                        raise ValueError(
                            f"unknown chaos action {action!r} for "
                            f"task {task_id!r}")
                    if timing not in CHAOS_TIMINGS:
                        raise ValueError(
                            f"unknown chaos timing {timing!r} for "
                            f"task {task_id!r}")
        self.workers = workers
        self.crash_retries = crash_retries
        self.stall_timeout = stall_timeout
        self.chaos = chaos or {}
        self.stats = PoolStats()
        self._live: dict[int, _Worker] = {}
        self._next_id = 0

    # -- liveness (heartbeat integration) ------------------------------

    def liveness(self) -> dict:
        """Point-in-time worker liveness for the heartbeat stream."""
        return {"target": self.stats.workers or self.workers,
                "alive": len(self._live),
                "crashed": self.stats.crashed,
                "requeued": self.stats.requeued}

    # -- the supervision loop ------------------------------------------

    def run(self, runner: "BatchRunner") -> list["TaskOutcome"]:
        from repro.runtime.batch import (
            REASON_WORKER_CRASH,
            TaskOutcome,
            error_chain,
        )
        self._reason_worker_crash = REASON_WORKER_CRASH
        self._task_outcome = TaskOutcome
        self._error_chain = error_chain

        manifest = runner.manifest
        total = manifest.task_count
        if total == 0:
            return []
        ctx = get_context("fork")
        self._ctx = ctx
        self._runner = runner
        crash_policy = RetryPolicy(retries=self.crash_retries,
                                   backoff_base_ms=0.0,
                                   seed=runner.policy.seed)
        crash_board = BreakerBoard()
        # Journal-completed tasks are pre-merged and never dispatched;
        # without a journal this is the plain indexed manifest walk.
        task_iter: Iterator[tuple[int, Task]] = \
            iter(runner.pending_tasks())
        pending: deque[_Assignment] = deque()
        outcomes: dict[int, "TaskOutcome"] = \
            dict(runner.replayed_outcomes())
        if len(outcomes) >= total:
            return [outcomes[index] for index in range(total)]
        exhausted = False
        target = min(self.workers, total - len(outcomes))
        self.stats.workers = target

        def next_assignment() -> _Assignment | None:
            nonlocal exhausted
            if pending:
                # A crash requeue, not a new dispatch: its intent is
                # already on file.
                return pending.popleft()
            if exhausted:
                return None
            try:
                index, task = next(task_iter)
            except StopIteration:
                exhausted = True
                return None
            runner.journal_intent(index, task)
            return _Assignment(index=index, task=task)

        def dead_letter(assignment: _Assignment) -> None:
            outcome = self._task_outcome(
                task=assignment.task, status="dead-letter",
                attempts=len(assignment.crash_failures),
                failures=list(assignment.crash_failures),
                reason=self._reason_worker_crash,
                signature=assignment.crash_signature)
            runner.journal_result(assignment.index, outcome)
            outcomes[assignment.index] = outcome
            self.stats.dead_lettered += 1
            if _obs.enabled:
                _obs.inc("runtime.tasks.deadletter")
            if runner.on_task_done is not None:
                runner.on_task_done(outcome)

        def handle_result(worker: _Worker, index: int,
                          outcome: "TaskOutcome",
                          delta: dict[str, int],
                          spans: list[dict] | None = None) -> None:
            assignment = worker.assignment
            worker.assignment = None
            if _obs.enabled:
                for name, value in delta.items():
                    _obs.inc(name, value)
                if spans:
                    # Stitch the worker's finished spans into this
                    # process's trace: fresh ids, clock origin rebased
                    # by the handshake offset, subtree reparented
                    # under the supervisor's open CLI span.
                    _trace.ingest_records(
                        spans, offset=worker.clock_offset,
                        worker=worker.id)
            if assignment is None or assignment.index != index:
                # A result for a task this worker no longer owns can
                # only mean supervisor state corruption; fail loudly.
                raise RuntimeError(
                    f"pool protocol violation: worker {worker.id} "
                    f"returned task index {index} it does not own")
            if assignment.crash_signature is not None:
                # The task survived its crashes: close that breaker,
                # mirroring the serial success-after-failure rule.
                crash_board.get(
                    assignment.crash_signature).record_success()
            # Durably journaled before the in-memory merge: a parent
            # death after this line costs nothing on resume.
            runner.journal_result(index, outcome)
            outcomes[index] = outcome
            if runner.on_task_done is not None:
                runner.on_task_done(outcome)

        def handle_breaker(worker: _Worker, op: str,
                           signature: str) -> None:
            # The arbitration counterpart of _BreakerChannel: apply
            # the worker's breaker traffic to the runner's own board
            # (the one the summary and heartbeats report).
            breaker = runner.board.get(signature)
            if op == "ask":
                verdict = breaker.allows_retries()
                try:
                    worker.conn.send(("brk-reply", verdict))
                except OSError:
                    pass  # died mid-ask: the sentinel path requeues
            elif op == "skip":
                breaker.record_skip()
            elif op == "failure":
                breaker.record_failure()
            elif op == "success":
                breaker.record_success()
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown breaker op {op!r}")

        def handle_death(worker: _Worker) -> None:
            nonlocal breach
            self._live.pop(worker.id, None)
            worker.proc.join()
            breach_report: str | None = None
            if worker.kill_reason is None and not worker.stopping:
                # Natural death: a result, breaker event, or breach
                # report may be sitting in the pipe (the worker died
                # between send and our next recv) — drain it before
                # judging, so no task ever runs twice *visibly* and
                # no breach is misfiled as a requeueable crash.
                try:
                    while worker.conn.poll():
                        message = worker.conn.recv()
                        if message[0] == "result":
                            handle_result(worker, message[1],
                                          message[2], message[3],
                                          message[4])
                        elif message[0] == "hello":
                            worker.clock_offset = \
                                time.perf_counter() - message[2]
                        elif message[0] == "brk" \
                                and message[1] != "ask":
                            handle_breaker(worker, message[1],
                                           message[2])
                        elif message[0] == "breach":
                            breach_report = message[1]
                except Exception:
                    pass
            try:
                worker.conn.close()
            except OSError:
                pass
            if worker.stopping:
                return
            exitcode = worker.proc.exitcode
            if worker.kill_reason is None and (
                    breach_report is not None
                    or exitcode == BREACH_EXITCODE):
                # The breach exit code is authoritative even when the
                # report message never arrived (its send failed, or
                # the worker was killed mid-send): a contract breach
                # must crash the batch, never burn the crash budget.
                breach = breach_report if breach_report is not None \
                    else (f"<worker {worker.id} exited with the "
                          "breach code before its traceback could "
                          "be read>")
                raise _BreachSignal()
            if worker.kill_reason is not None:
                detail = worker.kill_reason
            elif exitcode is not None and exitcode < 0:
                try:
                    detail = f"signal:{signal.Signals(-exitcode).name}"
                except ValueError:
                    detail = f"signal:{-exitcode}"
            else:
                detail = f"exitcode:{exitcode}"
            self.stats.crashed += 1
            self.stats.crash_details.append(detail)
            if _obs.enabled:
                _obs.inc("runtime.pool.crashed")
            print(f"xnf batch: worker {worker.id} died ({detail})",
                  file=sys.stderr)
            assignment = worker.assignment
            worker.assignment = None
            if assignment is not None:
                error = WorkerCrash(detail, worker=worker.id)
                sig = failure_signature(error)
                assignment.crash_failures.append(
                    {"attempt": assignment.crash_attempts,
                     "signature": sig, "transient": True,
                     "chain": self._error_chain(error)})
                assignment.crash_signature = sig
                breaker = crash_board.get(sig)
                if crash_policy.should_retry(
                        error, assignment.crash_attempts):
                    if breaker.allows_retries():
                        assignment.crash_attempts += 1
                        pending.appendleft(assignment)
                        self.stats.requeued += 1
                        if _obs.enabled:
                            _obs.inc("runtime.pool.requeued")
                    else:
                        breaker.record_skip()
                        dead_letter(assignment)
                else:
                    breaker.record_failure()
                    dead_letter(assignment)
            # Keep the pool at strength while there is work left.
            if len(outcomes) < total:
                spawn()

        # Worker spans are only worth buffering and shipping when the
        # parent has somewhere to put them; the propagated context is
        # the parent's ambient one (trace_id and all), each worker
        # stamping its own ``worker`` id into its copy.
        trace_wire = None
        if _obs.enabled and _trace.has_sinks():
            context = _trace.get_context() or _trace.SpanContext()
            trace_wire = context.to_wire()

        def spawn() -> None:
            if len(self._live) >= target:
                return
            worker_id = self._next_id
            self._next_id += 1
            parent_conn, child_conn = ctx.Pipe(duplex=True)
            interval = self.stall_timeout / 4 \
                if self.stall_timeout > 0 else 0.0
            proc = ctx.Process(
                target=_worker_main,
                args=(worker_id, runner, child_conn, interval,
                      trace_wire),
                name=f"xnf-batch-worker-{worker_id}", daemon=True)
            proc.start()
            child_conn.close()
            self._live[worker_id] = _Worker(worker_id, proc,
                                            parent_conn)
            self.stats.spawned += 1
            if _obs.enabled:
                _obs.inc("runtime.pool.spawned")
                _obs.set_gauge("runtime.pool.workers.alive",
                               len(self._live))

        def dispatch() -> None:
            for worker in list(self._live.values()):
                if worker.assignment is not None or worker.stopping:
                    continue
                assignment = next_assignment()
                if assignment is None:
                    return
                chaos = self.chaos.get(assignment.task.id, {}).get(
                    assignment.crash_attempts)
                if assignment.last_worker is not None \
                        and assignment.last_worker != worker.id:
                    self.stats.stolen += 1
                    if _obs.enabled:
                        _obs.inc("runtime.pool.stolen")
                try:
                    worker.conn.send(("task", assignment.index,
                                      assignment.task, chaos))
                except OSError:
                    # Died between wait() and send(): put the task
                    # back; the sentinel wakes us to handle the death.
                    pending.appendleft(assignment)
                    continue
                assignment.last_worker = worker.id
                worker.assignment = assignment
                worker.last_seen = time.monotonic()

        breach: str | None = None
        try:
            for _ in range(target):
                spawn()
            dispatch()
            while len(outcomes) < total:
                if not self._live:
                    # Every worker is gone yet work remains — only
                    # reachable if spawning itself fails.
                    raise RuntimeError(
                        "pool lost all workers with "
                        f"{total - len(outcomes)} tasks unfinished")
                conns = {worker.conn: worker
                         for worker in self._live.values()}
                sentinels = {worker.proc.sentinel: worker
                             for worker in self._live.values()}
                ready = _mp_connection.wait(
                    list(conns) + list(sentinels), timeout=self._TICK)
                for item in ready:
                    worker = conns.get(item)
                    if worker is None:
                        continue  # sentinel: handled below
                    if worker.id not in self._live:
                        continue  # already reaped this round
                    try:
                        while worker.conn.poll():
                            message = worker.conn.recv()
                            worker.last_seen = time.monotonic()
                            if message[0] == "result":
                                handle_result(worker, message[1],
                                              message[2], message[3],
                                              message[4])
                            elif message[0] == "brk":
                                handle_breaker(worker, message[1],
                                               message[2])
                            elif message[0] == "hello":
                                # Clock handshake: measure the offset
                                # between our perf_counter origin and
                                # the worker's (the recv latency makes
                                # it a slight overestimate, which only
                                # shifts stitched spans later — never
                                # before their dispatch).
                                worker.clock_offset = \
                                    time.perf_counter() - message[2]
                            elif message[0] == "hb":
                                pass
                            elif message[0] == "breach":
                                breach = message[1]
                                raise _BreachSignal()
                            else:  # pragma: no cover - defensive
                                raise RuntimeError(
                                    "unknown pool message "
                                    f"{message[0]!r}")
                    except (EOFError, OSError):
                        pass  # death: the sentinel handler takes over
                    except _BreachSignal:
                        raise
                    except RuntimeError:
                        raise
                    except Exception:
                        # recv() could not unpickle what the worker
                        # wrote: the channel is poisoned — kill the
                        # worker and let the death handler requeue.
                        self._kill(worker, "unpicklable-result")
                for item in ready:
                    worker = sentinels.get(item)
                    if worker is not None and worker.id in self._live:
                        handle_death(worker)
                if self.stall_timeout > 0:
                    now = time.monotonic()
                    for worker in list(self._live.values()):
                        if worker.assignment is not None \
                                and worker.kill_reason is None \
                                and now - worker.last_seen \
                                > self.stall_timeout:
                            self.stats.stalls += 1
                            self._kill(worker, "stall")
                dispatch()
            self._shutdown_graceful()
        except _BreachSignal:
            raise RuntimeError(
                "worker exception-safety contract breach "
                "(non-ReproError escaped a task):\n"
                + (breach or "<no traceback>")) from None
        finally:
            # Inside the finally so the drained-pool gauge state is
            # honest even when a breach (or any other error) unwinds
            # the supervision loop: once _shutdown_force returns, no
            # worker is alive, and a lingering exporter scrape must
            # see zero.
            self._shutdown_force()
            if _obs.enabled:
                _obs.set_gauge("runtime.pool.workers.alive", 0)
        return [outcomes[index] for index in range(total)]

    # -- teardown ------------------------------------------------------

    def _kill(self, worker: _Worker, reason: str) -> None:
        worker.kill_reason = reason
        try:
            os.kill(worker.proc.pid, signal.SIGKILL)
        except (OSError, TypeError):  # pragma: no cover - already gone
            pass

    def _shutdown_graceful(self) -> None:
        """Stop idle workers, collecting their metrics dumps (the
        ``bye`` message).

        A worker with heartbeats enabled may have ``hb`` pings queued
        ahead of its bye, so each pipe is drained until the bye, EOF,
        or the deadline — one blind recv would swallow the dump.
        """
        for worker in list(self._live.values()):
            worker.stopping = True
            try:
                worker.conn.send(("stop",))
            except OSError:
                continue
        deadline = time.monotonic() + 10.0
        for worker in list(self._live.values()):
            try:
                while True:
                    remaining = max(0.0, deadline - time.monotonic())
                    if not worker.conn.poll(remaining):
                        break
                    message = worker.conn.recv()
                    if message[0] == "bye":
                        _obs.merge_raw(message[1])
                        break
            except (EOFError, OSError):
                pass
            worker.proc.join(
                timeout=max(0.1, deadline - time.monotonic()))
            self._live.pop(worker.id, None)
            try:
                worker.conn.close()
            except OSError:
                pass

    def _shutdown_force(self) -> None:
        """Last-resort teardown: SIGKILL anything still alive."""
        for worker in list(self._live.values()):
            try:
                if worker.proc.is_alive():
                    os.kill(worker.proc.pid, signal.SIGKILL)
            except (OSError, TypeError):
                pass
            worker.proc.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._live.clear()


class _BreachSignal(Exception):
    """Internal control flow: a worker reported a contract breach."""
