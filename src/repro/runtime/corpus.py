"""Seeded spec-corpus generation for batch and chaos runs.

The chaos-batch CI job and the ensemble-agreement acceptance test need
*many* valid ``(D, Σ)`` inputs, varied enough to exercise all three
implication engines, yet fully deterministic so failures replay.  This
module generates them: :func:`generate_manifest` produces a
self-contained batch-manifest payload (inline ``dtd_text`` /
``fds_text``, no files to ship) whose tasks are drawn from three spec
families by a :class:`random.Random` seeded from the caller's seed:

* **simple** — a flat ``db (row*)`` DTD with 2–4 required attributes;
  the closure engine is *complete* here, so ensemble runs cross-check
  closure against the chase on equal authority;
* **disjunctive** — ``db ((a | b)*)``: non-simple, the regime where
  the chase must enumerate disjunction choices and the closure is only
  sound — the interesting territory for differential testing;
* **nested** — the paper's university shape (``course`` / ``taken_by``
  / ``student``), where the classic anomalous FD
  ``student.@sno -> student.@name`` drives real normalization work.

Run as a module to write a manifest file for the CLI::

    python -m repro.runtime.corpus --count 200 --seed 1 --out batch.json

Generation is a true stream: :func:`iter_tasks` yields one task dict
at a time from O(1) state, so 100k-task manifests are emitted (and,
via the ``.jsonl`` format + :class:`~repro.runtime.manifest.
StreamingManifest`, later consumed) without ever materializing the
whole corpus — ``--format jsonl`` writes the streaming layout, and
:func:`stream_manifest` hands the same corpus to the batch runner
directly::

    python -m repro.runtime.corpus --count 100000 --seed 1 \
        --format jsonl --out batch.jsonl
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import IO, Iterator

from repro.runtime import manifest as _manifest
from repro.runtime.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_VERSION,
    OPERATIONS,
)

_SIMPLE_ATTRS = ("a", "b", "c", "d")


def _pairs(rng: random.Random, pool: list[str],
           count: int) -> list[str]:
    """``count`` distinct ``lhs -> rhs`` FDs over ``pool``, never both
    directions of one pair: a two-cycle like ``@a -> @b, @b -> @a``
    sends the normalizer's minimal-anomalous-FD search into a
    multi-minute closure grind, and the corpus must stay a green
    baseline at CI scale (200-task batches)."""
    fds: list[str] = []
    seen: set[tuple[str, str]] = set()
    while len(fds) < count:
        lhs = rng.choice(pool)
        rhs = rng.choice([path for path in pool if path != lhs])
        if (lhs, rhs) in seen or (rhs, lhs) in seen:
            continue
        seen.add((lhs, rhs))
        fds.append(f"{lhs} -> {rhs}")
    return fds


def _simple_spec(rng: random.Random) -> tuple[str, list[str], list[str]]:
    count = rng.randint(2, len(_SIMPLE_ATTRS))
    attrs = _SIMPLE_ATTRS[:count]
    dtd = ("<!ELEMENT db (row*)>\n<!ELEMENT row EMPTY>\n<!ATTLIST row "
           + " ".join(f"{name} CDATA #REQUIRED" for name in attrs)
           + ">")
    pool = [f"db.row.@{name}" for name in attrs] + ["db.row"]
    return dtd, _pairs(rng, pool, rng.randint(1, 2)), _pairs(rng, pool, 3)


def _disjunctive_spec(rng: random.Random,
                      ) -> tuple[str, list[str], list[str]]:
    dtd = ("<!ELEMENT db ((a | b)*)>\n"
           "<!ELEMENT a EMPTY>\n<!ATTLIST a x CDATA #REQUIRED>\n"
           "<!ELEMENT b EMPTY>\n<!ATTLIST b y CDATA #REQUIRED>")
    pool = ["db.a.@x", "db.b.@y", "db.a", "db.b"]
    return dtd, _pairs(rng, pool, rng.randint(1, 2)), _pairs(rng, pool, 3)


def _nested_spec(rng: random.Random) -> tuple[str, list[str], list[str]]:
    dtd = ("<!ELEMENT db (course*)>\n"
           "<!ELEMENT course (taken_by)>\n"
           "<!ATTLIST course cno CDATA #REQUIRED "
           "title CDATA #REQUIRED>\n"
           "<!ELEMENT taken_by (student*)>\n"
           "<!ELEMENT student EMPTY>\n"
           "<!ATTLIST student sno CDATA #REQUIRED "
           "name CDATA #REQUIRED>")
    student = "db.course.taken_by.student"
    candidates = [
        "db.course.@cno -> db.course",
        "db.course.@cno -> db.course.@title",
        f"{student}.@sno -> {student}.@name",          # anomalous
        f"{{db.course, {student}.@sno}} -> {student}",
        # NB: not the reverse "@title -> @cno": that attribute cycle
        # sends minimal_anomalous_fd into a multi-minute closure grind,
        # and the corpus must stay a green baseline at CI scale.
        "db.course.@title -> db.course",
    ]
    fds = rng.sample(candidates, rng.randint(1, 3))
    return dtd, fds, list(candidates)


_FAMILIES = (_simple_spec, _disjunctive_spec, _nested_spec)


def iter_tasks(count: int, *, seed: int = 0,
               ops: tuple[str, ...] = OPERATIONS) -> Iterator[dict]:
    """Yield ``count`` manifest task dicts, deterministic in ``seed``.

    O(1) generator state: the 100k-task corpora the pool backend
    parallelizes are produced one task at a time, never as a list.
    """
    rng = random.Random(f"repro.runtime.corpus:{seed}")
    for index in range(count):
        family = rng.choice(_FAMILIES)
        dtd, fds, pool = family(rng)
        op = rng.choice(list(ops))
        task: dict = {"id": f"corpus-{index:04d}", "op": op,
                      "dtd_text": dtd, "fds_text": "\n".join(fds)}
        if op == "implies":
            # Query an FD that is in Σ (trivially implied) or a fresh
            # one from the pool — both verdict polarities show up.
            task["fd"] = rng.choice(fds) if rng.random() < 0.5 \
                else rng.choice(pool)
        yield task


def generate_tasks(count: int, *, seed: int = 0,
                   ops: tuple[str, ...] = OPERATIONS) -> list[dict]:
    """``count`` manifest task dicts, deterministic in ``seed``."""
    return list(iter_tasks(count, seed=seed, ops=ops))


def generate_manifest(count: int, *, seed: int = 0,
                      ops: tuple[str, ...] = OPERATIONS,
                      defaults: dict | None = None) -> dict:
    """A complete, self-contained manifest payload (JSON-ready)."""
    manifest_defaults = {"seed": seed}
    if defaults:
        manifest_defaults.update(defaults)
    return {"schema": MANIFEST_SCHEMA, "version": MANIFEST_VERSION,
            "defaults": manifest_defaults,
            "tasks": generate_tasks(count, seed=seed, ops=ops)}


def stream_manifest(count: int, *, seed: int = 0,
                    ops: tuple[str, ...] = OPERATIONS,
                    defaults: dict | None = None,
                    ) -> "_manifest.StreamingManifest":
    """The same corpus as :func:`generate_manifest`, as a lazy
    re-iterable :class:`~repro.runtime.manifest.StreamingManifest` —
    the in-process route to a 100k-task batch with O(1) manifest
    memory."""
    manifest_defaults = {"seed": seed}
    if defaults:
        manifest_defaults.update(defaults)
    return _manifest.stream(
        lambda: iter_tasks(count, seed=seed, ops=ops), count,
        defaults=manifest_defaults,
        source=f"<corpus count={count} seed={seed}>")


def write_jsonl(stream: IO[str], count: int, *, seed: int = 0,
                ops: tuple[str, ...] = OPERATIONS,
                defaults: dict | None = None) -> None:
    """Write the streaming (``.jsonl``) manifest layout: one header
    line carrying the envelope + declared ``count``, then one task
    object per line — O(1) memory at any corpus size."""
    manifest_defaults = {"seed": seed}
    if defaults:
        manifest_defaults.update(defaults)
    header = {"schema": MANIFEST_SCHEMA, "version": MANIFEST_VERSION,
              "defaults": manifest_defaults, "count": count}
    stream.write(json.dumps(header, sort_keys=True) + "\n")
    for task in iter_tasks(count, seed=seed, ops=ops):
        stream.write(json.dumps(task, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runtime.corpus",
        description="Generate a seeded batch-manifest spec corpus.")
    parser.add_argument("--count", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--ops", default=",".join(OPERATIONS),
                        help="comma-separated subset of "
                        f"{list(OPERATIONS)}")
    parser.add_argument("--out", default="-",
                        help="output path ('-' for stdout)")
    parser.add_argument("--format", choices=("json", "jsonl"),
                        default=None,
                        help="manifest layout: one JSON document, or "
                        "the streaming header+task-per-line .jsonl "
                        "layout (default: by --out suffix, json "
                        "otherwise)")
    options = parser.parse_args(argv)
    ops = tuple(op.strip() for op in options.ops.split(",") if op.strip())
    unknown = [op for op in ops if op not in OPERATIONS]
    if unknown:
        parser.error(f"unknown ops {unknown}; "
                     f"choose from {list(OPERATIONS)}")
    fmt = options.format
    if fmt is None:
        fmt = "jsonl" if options.out.endswith(".jsonl") else "json"

    def write(handle: IO[str]) -> None:
        if fmt == "jsonl":
            write_jsonl(handle, options.count, seed=options.seed,
                        ops=ops)
        else:
            payload = generate_manifest(options.count,
                                        seed=options.seed, ops=ops)
            handle.write(json.dumps(payload, indent=2, sort_keys=True)
                         + "\n")

    if options.out == "-":
        write(sys.stdout)
    else:
        with open(options.out, "w") as handle:
            write(handle)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
