"""The differential engine ensemble: N-version implication checking.

The three implication engines (closure, chase, brute force) were built
independently and cross-validated only in the test suite
(``tests/property/test_implication_agree.py``).  This module moves
that cross-check into production paths, in the spirit of differential
testing (McKeeman; Csmith): run the engines side by side on **every
decision**, compare verdicts, and never let a contradiction pass
silently.

Authority model — what each engine's answer is worth:

* **closure** — sound everywhere (a ``True`` is final) and complete
  for simple DTDs (there a ``False`` is final too).  On non-simple
  DTDs a ``False`` is merely "not derivable", so closure-``False`` /
  chase-``True`` is the engine's documented incompleteness, *not* a
  disagreement (counted as ``ensemble.closure.incomplete``).
* **chase** — exact on non-recursive DTDs: authoritative both ways.
* **brute** — bounded-exhaustive, run only on small inputs: a found
  countermodel (``False``) is authoritative, an exhausted search
  (``True``) is advisory only.

A **disagreement** is an authoritative ``YES`` and an authoritative
``NO`` for the same query.  It is escalated as a first-class
:class:`EnsembleDisagreement` record on the ambient :class:`Session`;
in ``strict`` mode it additionally raises
:class:`~repro.errors.EnsembleDisagreementError` (the batch runtime
dead-letters the task).  In ``check`` mode the decision resolves with
the primary exact engine's verdict — not silently: the record, the
``ensemble.disagreements`` counter, and the batch summary all carry it.

**Degradation**: when one engine trips a :mod:`repro.guard` limit the
ensemble falls back to a surviving engine whose answer is sound on its
own (``ensemble.fallback.*`` counters), and only re-raises the
exhaustion when no survivor is authoritative.  The brute member never
fails a decision: any error it hits just marks it "skipped".

Usage::

    from repro.runtime import ensemble

    with ensemble.session("check") as sess:
        spec = XMLSpec.parse(dtd_text, fds, engine="ensemble")
        spec.is_in_xnf()              # every query double-checked
    assert sess.disagreements == []

``engine="ensemble"`` is accepted everywhere an engine name goes
(:class:`~repro.spec.XMLSpec`, the XNF test, normalization), so whole
pipelines run under the differential oracle.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.errors import (
    EnsembleDisagreementError,
    ReproError,
    ResourceExhausted,
    UnsupportedFeatureError,
)
from repro.dtd.model import DTD
from repro.fd.brute import brute_implies
from repro.fd.chase import chase_implies
from repro.fd.closure import closure_implies
from repro.fd.model import FD
from repro.obs import metrics as _obs

#: The ensemble modes the CLI exposes.
MODES = ("off", "check", "strict")

#: Inputs at or below these sizes also get the brute-force member.
#: The bounds are deliberately tight: XNF checks and normalization
#: runs issue *many* implication queries, and the brute member pays
#: its enumeration on every one.  ``max_word=2`` suffices for the
#: classic two-tuple FD countermodels.
BRUTE_MAX_PATHS = 6
BRUTE_MAX_SIGMA = 3
BRUTE_MAX_WORD = 2
BRUTE_MAX_TREES = 500


@dataclass(frozen=True)
class EnsembleDisagreement:
    """One observed contradiction between engines, JSON-ready.

    ``verdicts`` maps engine name to ``"YES"`` / ``"NO"`` (or
    ``"skipped"`` for a member that did not run); ``resolved_with``
    names the engine whose verdict the decision returned in ``check``
    mode, or is ``None`` when strict mode raised instead.
    """

    query: str
    verdicts: tuple[tuple[str, str], ...]
    resolved_with: str | None

    def to_json(self) -> dict:
        return {"query": self.query,
                "verdicts": dict(self.verdicts),
                "resolved_with": self.resolved_with}

    def describe(self) -> str:
        votes = ", ".join(f"{engine}={verdict}"
                          for engine, verdict in self.verdicts)
        return f"engines disagree on {self.query!r}: {votes}"


class Session:
    """The ambient collector of one ensemble run's records."""

    def __init__(self, mode: str = "check") -> None:
        if mode not in MODES:
            raise ValueError(
                f"unknown ensemble mode {mode!r}; expected one of "
                f"{list(MODES)}")
        self.mode = mode
        self.disagreements: list[EnsembleDisagreement] = []
        self.fallbacks: list[str] = []

    def drain(self) -> list[EnsembleDisagreement]:
        """Return and clear the collected disagreements."""
        records, self.disagreements = self.disagreements, []
        return records


#: The bottom-of-stack session: ``engine="ensemble"`` outside any
#: explicit :func:`session` block records here in ``check`` mode.
_default_session = Session("check")
_stack: list[Session] = [_default_session]


def current() -> Session:
    """The innermost active session (never ``None``)."""
    return _stack[-1]


@contextmanager
def session(mode: str = "check") -> Iterator[Session]:
    """Install a fresh :class:`Session` for the ``with`` body."""
    sess = Session(mode)
    _stack.append(sess)
    try:
        yield sess
    finally:
        if sess in _stack:
            _stack.remove(sess)


def brute_feasible(dtd: DTD, sigma_size: int) -> bool:
    """Whether the bounded-exhaustive member should join the vote."""
    if dtd.is_recursive:
        return False
    return (len(dtd.paths) <= BRUTE_MAX_PATHS
            and sigma_size <= BRUTE_MAX_SIGMA)


def _verdict(value: bool) -> str:
    return "YES" if value else "NO"


def differential_implies(dtd: DTD, sigma: list[FD], fd: FD, *,
                         simple: bool) -> bool:
    """Decide one single-RHS query with every applicable engine and
    cross-check the verdicts (see the module docstring for the
    authority model).  Called by
    :meth:`repro.fd.implication.ImplicationEngine._decide` under
    ``engine="ensemble"``.
    """
    sess = current()
    if _obs.enabled:
        _obs.inc("ensemble.decisions")

    closure_answer: bool | None = None
    closure_error: ResourceExhausted | None = None
    try:
        closure_answer = closure_implies(dtd, sigma, fd)
    except ResourceExhausted as error:
        closure_error = error

    if dtd.is_recursive and not simple and closure_answer is False:
        # No exact engine can run here, and a closure "NO" would be
        # unsound to serve — same refusal as engine="auto".
        raise UnsupportedFeatureError(
            "exact implication over recursive non-simple DTDs is not "
            "supported; force engine='closure' for a sound "
            "approximation")

    chase_answer: bool | None = None
    chase_error: ResourceExhausted | None = None
    if not dtd.is_recursive:
        try:
            chase_answer = chase_implies(dtd, sigma, fd)
        except ResourceExhausted as error:
            chase_error = error

    # -- degradation: fall back to a surviving authoritative engine ----
    if chase_answer is None and not dtd.is_recursive:
        if closure_answer is True or (closure_answer is False and simple):
            # The closure's answer is sound on its own; serve it.
            if _obs.enabled:
                _obs.inc("ensemble.fallback.closure")
            sess.fallbacks.append("closure")
            return closure_answer
        assert chase_error is not None
        chase_error.partial.setdefault("engine", "ensemble.chase")
        raise chase_error
    if closure_answer is None and chase_answer is not None:
        # The chase is exact by itself; the cross-check just degrades.
        if _obs.enabled:
            _obs.inc("ensemble.fallback.chase")
        sess.fallbacks.append("chase")
        return chase_answer
    if closure_answer is None and chase_answer is None:
        # Recursive DTD with an exhausted closure: nothing survived.
        assert closure_error is not None
        closure_error.partial.setdefault("engine", "ensemble.closure")
        raise closure_error

    brute_answer: bool | None = None
    if chase_answer is not None and brute_feasible(dtd, len(sigma)):
        try:
            brute_answer = brute_implies(
                dtd, sigma, fd, max_word=BRUTE_MAX_WORD,
                max_trees=BRUTE_MAX_TREES)
            if _obs.enabled:
                _obs.inc("ensemble.brute.runs")
        except ReproError:
            brute_answer = None  # advisory member only; never fatal

    # -- authority: collect definitive YES / NO votes ------------------
    yes_votes: list[str] = []
    no_votes: list[str] = []
    if closure_answer is True:
        yes_votes.append("closure")      # sound everywhere
    elif closure_answer is False and simple:
        no_votes.append("closure")       # complete on simple DTDs
    elif closure_answer is False and chase_answer is True:
        if _obs.enabled:
            _obs.inc("ensemble.closure.incomplete")
    if chase_answer is True:
        yes_votes.append("chase")
    elif chase_answer is False:
        no_votes.append("chase")
    if brute_answer is False:
        no_votes.append("brute")         # an exhibited countermodel

    if yes_votes and no_votes:
        primary = "chase" if chase_answer is not None else "closure"
        verdicts = []
        for engine, answer in (("closure", closure_answer),
                               ("chase", chase_answer),
                               ("brute", brute_answer)):
            verdicts.append(
                (engine,
                 "skipped" if answer is None else _verdict(answer)))
        record = EnsembleDisagreement(
            query=str(fd), verdicts=tuple(verdicts),
            resolved_with=None if sess.mode == "strict" else primary)
        sess.disagreements.append(record)
        if _obs.enabled:
            _obs.inc("ensemble.disagreements")
        if sess.mode == "strict":
            raise EnsembleDisagreementError(record.describe(),
                                            record=record)
        # check mode: escalate through the record, resolve with the
        # primary exact engine so the batch can keep moving.
        assert chase_answer is not None or closure_answer is not None
        return chase_answer if chase_answer is not None \
            else bool(closure_answer)

    if _obs.enabled:
        _obs.inc("ensemble.agreements")
    if chase_answer is not None:
        return chase_answer
    assert closure_answer is not None
    return closure_answer
