"""Live batch heartbeats: a long run observable *in flight*.

``xnf batch --heartbeat FILE`` attaches a :class:`HeartbeatWriter` to
the batch runner's per-task completion hook.  At most once per
``interval_s`` (and always on the final task) it appends one
schema-versioned JSON line describing the run so far::

    {"schema": "repro.runtime.heartbeat", "version": 1, "seq": 3,
     "elapsed_s": 2.134,
     "tasks": {"total": 200, "done": 57, "ok": 55, "deadletter": 2},
     "retries": 9,
     "breakers": {"total": 1, "open": 1, "half-open": 0, "closed": 0},
     "throughput_tps": 26.7, "eta_s": 5.4}

* ``tasks`` — terminal outcomes so far (``done = ok + deadletter``);
* ``retries`` — re-attempts scheduled across all tasks so far;
* ``breakers`` — circuit-breaker states right now
  (:meth:`repro.runtime.breaker.BreakerBoard.state_counts`); live on
  parallel runs too, because the pool supervisor arbitrates every
  worker breaker decision on this same board;
* ``throughput_tps`` — completed tasks per second since the run
  started; ``eta_s`` — remaining tasks at that rate (``null`` until
  the throughput is measurable);
* ``workers`` (optional, parallel runs only) — pool liveness from
  :meth:`repro.runtime.pool.PoolBackend.liveness`: the target pool
  size, how many workers are alive right now, and the cumulative
  crash/requeue counts, so an operator tailing the heartbeat file
  sees worker churn as it happens.  Serial runs omit the key, which
  keeps their records byte-compatible with pre-pool consumers.

The same numbers are published as ``runtime.batch.*`` gauges while
the batch runs, so an exporter scrape (``--metrics-port``) sees live
progress without reading the heartbeat file.  Wall-clock fields make
heartbeat *values* inherently non-deterministic; the *schema* is
pinned by :func:`validate_heartbeat`, which tests and the CI smoke
job run over every emitted line.
"""

from __future__ import annotations

import json
import time
from typing import IO, Callable

from repro.obs import metrics as _obs
from repro.runtime.breaker import CLOSED, HALF_OPEN, OPEN, BreakerBoard

#: The ``schema`` discriminator stamped on every heartbeat record.
HEARTBEAT_SCHEMA = "repro.runtime.heartbeat"

#: Bump on any incompatible change to the record layout.
HEARTBEAT_VERSION = 1

_TASK_KEYS = ("total", "done", "ok", "deadletter")
_BREAKER_KEYS = ("total", OPEN, HALF_OPEN, CLOSED)
_WORKER_KEYS = ("target", "alive", "crashed", "requeued")
_JOURNAL_KEYS = ("appended", "replayed", "skipped")


class HeartbeatWriter:
    """Emits heartbeat records for one batch run (see module doc).

    ``interval_s`` throttles emission (0 emits on every completed
    task); ``clock`` is injectable for deterministic tests.  The
    writer is given the runner's :class:`BreakerBoard` so records can
    report breaker states without reaching into runner internals.
    """

    def __init__(self, stream: IO[str], *, total: int,
                 board: BreakerBoard | None = None,
                 pool: object | None = None,
                 journal: object | None = None,
                 interval_s: float = 1.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if total < 0:
            raise ValueError(f"total must be >= 0, got {total}")
        if interval_s < 0:
            raise ValueError(
                f"interval_s must be >= 0, got {interval_s}")
        self.stream = stream
        self.total = total
        self.board = board
        #: Anything with a ``liveness() -> dict`` method (in practice
        #: a :class:`repro.runtime.pool.PoolBackend`); ``None`` on
        #: serial runs.
        self.pool = pool
        #: Anything with a ``stats() -> dict`` method (in practice a
        #: :class:`repro.runtime.journal.BatchJournal`); ``None`` when
        #: the run is not journaled.  On a resume, ``tasks.done``
        #: counts only tasks executed *by this process* — the skipped
        #: prefix shows up here instead.
        self.journal = journal
        self.interval_s = interval_s
        self._clock = clock
        self._started = clock()
        self._last_emit: float | None = None
        self.seq = 0
        self.done = 0
        self.ok = 0
        self.deadletter = 0
        self.retries = 0

    # -- the runner hook -----------------------------------------------

    def task_done(self, outcome) -> None:
        """Record one terminal task outcome; emit if the interval
        elapsed or the batch just finished."""
        self.done += 1
        if outcome.ok:
            self.ok += 1
        else:
            self.deadletter += 1
        self.retries += max(0, outcome.attempts - 1)
        now = self._clock()
        due = (self._last_emit is None
               or now - self._last_emit >= self.interval_s)
        if due or self.done >= self.total:
            self.emit(now=now)

    # -- emission --------------------------------------------------------

    def record(self, *, now: float | None = None) -> dict:
        """The current heartbeat record (without writing it)."""
        now = self._clock() if now is None else now
        elapsed = max(0.0, now - self._started)
        throughput = self.done / elapsed if elapsed > 0 else None
        remaining = max(0, self.total - self.done)
        eta = remaining / throughput if throughput else None
        breakers = {OPEN: 0, HALF_OPEN: 0, CLOSED: 0}
        if self.board is not None:
            breakers.update(self.board.state_counts())
        record = {
            "schema": HEARTBEAT_SCHEMA,
            "version": HEARTBEAT_VERSION,
            "seq": self.seq + 1,
            "elapsed_s": round(elapsed, 3),
            "tasks": {"total": self.total, "done": self.done,
                      "ok": self.ok, "deadletter": self.deadletter},
            "retries": self.retries,
            "breakers": {"total": sum(breakers.values()), **breakers},
            "throughput_tps": (round(throughput, 3)
                               if throughput is not None else None),
            "eta_s": round(eta, 3) if eta is not None else None,
        }
        if self.pool is not None:
            record["workers"] = self.pool.liveness()
        if self.journal is not None:
            record["journal"] = self.journal.stats()
        return record

    def emit(self, *, now: float | None = None) -> dict:
        """Write one heartbeat line (and refresh the live gauges)."""
        now = self._clock() if now is None else now
        record = self.record(now=now)
        self.seq = record["seq"]
        self._last_emit = now
        self.stream.write(json.dumps(record, sort_keys=True) + "\n")
        self.stream.flush()
        if _obs.enabled:
            self._publish_gauges(record)
            _obs.inc("runtime.heartbeats")
        return record

    @staticmethod
    def _publish_gauges(record: dict) -> None:
        tasks = record["tasks"]
        _obs.set_gauge("runtime.batch.tasks.total", tasks["total"])
        _obs.set_gauge("runtime.batch.tasks.done", tasks["done"])
        _obs.set_gauge("runtime.batch.tasks.ok", tasks["ok"])
        _obs.set_gauge("runtime.batch.tasks.deadletter",
                       tasks["deadletter"])
        _obs.set_gauge("runtime.batch.retries", record["retries"])
        if record["throughput_tps"] is not None:
            _obs.set_gauge("runtime.batch.throughput_tps",
                           record["throughput_tps"])
        if record["eta_s"] is not None:
            _obs.set_gauge("runtime.batch.eta_s", record["eta_s"])

    def close(self) -> None:
        """Emit a final record unless the last one already covered the
        terminal state (so every heartbeat file ends complete)."""
        if self.done and (self.seq == 0 or self._last_pending()):
            self.emit()

    def _last_pending(self) -> bool:
        # task_done emits unconditionally on the final task, so a
        # pending state only arises when close() is called mid-run
        # (e.g. the batch loop aborted on a contract breach).
        return self.done < self.total


def validate_heartbeat(record: object) -> dict:
    """Check one heartbeat record against the schema; returns it.

    Raises ``ValueError`` with a precise message on any mismatch —
    used by the unit tests and the CI smoke job over every line of a
    live run's heartbeat file.
    """
    if not isinstance(record, dict):
        raise ValueError(f"heartbeat must be an object, got "
                         f"{type(record).__name__}")
    if record.get("schema") != HEARTBEAT_SCHEMA:
        raise ValueError(f"schema={record.get('schema')!r}, expected "
                         f"{HEARTBEAT_SCHEMA!r}")
    if record.get("version") != HEARTBEAT_VERSION:
        raise ValueError(f"version={record.get('version')!r}, expected "
                         f"{HEARTBEAT_VERSION}")
    if not isinstance(record.get("seq"), int) or record["seq"] < 1:
        raise ValueError(f"seq must be a positive int, got "
                         f"{record.get('seq')!r}")
    if not isinstance(record.get("elapsed_s"), (int, float)) \
            or record["elapsed_s"] < 0:
        raise ValueError(f"elapsed_s must be a non-negative number, "
                         f"got {record.get('elapsed_s')!r}")
    tasks = record.get("tasks")
    if not isinstance(tasks, dict):
        raise ValueError("missing 'tasks' object")
    for key in _TASK_KEYS:
        if not isinstance(tasks.get(key), int) or tasks[key] < 0:
            raise ValueError(f"tasks.{key} must be a non-negative "
                             f"int, got {tasks.get(key)!r}")
    if tasks["done"] != tasks["ok"] + tasks["deadletter"]:
        raise ValueError(f"tasks.done={tasks['done']} != ok+deadletter="
                         f"{tasks['ok'] + tasks['deadletter']}")
    if tasks["done"] > tasks["total"]:
        raise ValueError(f"tasks.done={tasks['done']} exceeds "
                         f"total={tasks['total']}")
    if not isinstance(record.get("retries"), int) \
            or record["retries"] < 0:
        raise ValueError(f"retries must be a non-negative int, got "
                         f"{record.get('retries')!r}")
    breakers = record.get("breakers")
    if not isinstance(breakers, dict):
        raise ValueError("missing 'breakers' object")
    for key in _BREAKER_KEYS:
        if not isinstance(breakers.get(key), int) or breakers[key] < 0:
            raise ValueError(f"breakers[{key!r}] must be a "
                             f"non-negative int, got "
                             f"{breakers.get(key)!r}")
    for key in ("throughput_tps", "eta_s"):
        value = record.get(key)
        if value is not None and (not isinstance(value, (int, float))
                                  or value < 0):
            raise ValueError(f"{key} must be null or a non-negative "
                             f"number, got {value!r}")
    if "workers" in record:
        workers = record["workers"]
        if not isinstance(workers, dict):
            raise ValueError("'workers' must be an object when present")
        for key in _WORKER_KEYS:
            if not isinstance(workers.get(key), int) \
                    or workers[key] < 0:
                raise ValueError(f"workers.{key} must be a "
                                 f"non-negative int, got "
                                 f"{workers.get(key)!r}")
        if workers["alive"] > workers["target"]:
            raise ValueError(f"workers.alive={workers['alive']} "
                             f"exceeds target={workers['target']}")
    if "journal" in record:
        journal = record["journal"]
        if not isinstance(journal, dict):
            raise ValueError("'journal' must be an object when present")
        for key in _JOURNAL_KEYS:
            if not isinstance(journal.get(key), int) \
                    or journal[key] < 0:
                raise ValueError(f"journal.{key} must be a "
                                 f"non-negative int, got "
                                 f"{journal.get(key)!r}")
    return record


def validate_heartbeat_lines(text: str) -> list[dict]:
    """Validate every line of a heartbeat file; returns the records.

    Also checks the cross-record invariants: ``seq`` strictly
    increasing and ``tasks.done`` non-decreasing.
    """
    records: list[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            parsed = json.loads(line)
        except ValueError as error:
            raise ValueError(f"line {lineno}: not valid JSON ({error})")
        try:
            records.append(validate_heartbeat(parsed))
        except ValueError as error:
            raise ValueError(f"line {lineno}: {error}")
    for previous, current in zip(records, records[1:]):
        if current["seq"] <= previous["seq"]:
            raise ValueError(f"seq not strictly increasing: "
                             f"{previous['seq']} -> {current['seq']}")
        if current["tasks"]["done"] < previous["tasks"]["done"]:
            raise ValueError(f"tasks.done decreased: "
                             f"{previous['tasks']['done']} -> "
                             f"{current['tasks']['done']}")
    return records
