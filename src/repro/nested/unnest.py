"""Complete unnesting of nested relations (Figure 3b).

The complete unnesting flattens every nested level into a relation over
all atomic attributes; a tuple whose nested relation is empty
contributes no rows for that branch (as in the standard definition —
unnesting is "inner-join"-like), so Figure 3's two-level example
flattens to four (Country, State, City) rows.
"""

from __future__ import annotations

from repro.nested.instance import NestedRelation
from repro.relational.codd import CoddTable


def complete_unnesting(relation: NestedRelation) -> CoddTable:
    """Flatten to a table over all atomic attributes."""
    attributes = relation.schema.all_attributes
    table = CoddTable(attributes)
    for row in _rows(relation):
        table.add(row)
    return table


def _rows(relation: NestedRelation) -> list[dict[str, str]]:
    result: list[dict[str, str]] = []
    for tuple_ in relation.tuples:
        partials = [dict(tuple_.values)]
        for child in relation.schema.children:
            nested_rows = _rows(tuple_.nested[child.name])
            partials = [
                {**partial, **nested_row}
                for partial in partials
                for nested_row in nested_rows
            ]
        result.extend(partials)
    return result
