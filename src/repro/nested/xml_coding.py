"""The nested → XML coding of Section 5 (Proposition 5).

A nested schema ``G = X(G1)* ... (Gn)*`` maps to an element type ``G``
with ``P(G) = G1*, ..., Gn*`` and ``R(G)`` the atomic attributes of
``X``, under a root ``db`` with ``P(db) = G*``.  ``path(Gi)`` and
``path(A)`` are the induced DTD paths, and ``Σ_FD`` codes the given
FDs plus the PNF-enforcing keys.
"""

from __future__ import annotations

from typing import Iterable

from repro.dtd.model import DTD
from repro.dtd.paths import Path
from repro.fd.model import FD
from repro.nested.instance import NestedRelation
from repro.nested.schema import NestedSchema
from repro.regex.ast import EPSILON, concat, star, sym
from repro.relational.schema import RelationalFD
from repro.xmltree.model import XMLTree


def nested_dtd(schema: NestedSchema, *, root: str = "db") -> DTD:
    """``D_G``: the DTD coding of a nested schema."""
    productions = {root: star(sym(schema.name))}
    attributes: dict[str, frozenset[str]] = {}
    for sub in schema.walk():
        if sub.children:
            productions[sub.name] = concat(
                [star(sym(child.name)) for child in sub.children])
        else:
            productions[sub.name] = EPSILON
        if sub.atomic:
            attributes[sub.name] = frozenset("@" + a for a in sub.atomic)
    return DTD(root=root, productions=productions, attributes=attributes)


def schema_path(schema: NestedSchema, name: str, *,
                root: str = "db") -> Path:
    """``path(Gi)``: root-to-subschema path."""
    chain: list[str] = []
    current: str | None = name
    while current is not None:
        chain.append(current)
        parent = schema.parent_of(current)
        current = parent.name if parent is not None else None
    if chain[-1] != schema.name:
        raise ValueError(f"{name!r} is not a subschema of {schema.name!r}")
    return Path([root, *reversed(chain)])


def attribute_path(schema: NestedSchema, attribute: str, *,
                   root: str = "db") -> Path:
    """``path(A)``: the path of an atomic attribute."""
    owner = schema.schema_of_attribute(attribute)
    return schema_path(schema, owner.name, root=root).attribute(attribute)


def nested_sigma(schema: NestedSchema, fds: Iterable[RelationalFD], *,
                 root: str = "db") -> list[FD]:
    """``Σ_FD``: coded FDs plus the PNF-enforcing keys (Section 5).

    * each ``Ai1 ... Aim -> Aj`` becomes
      ``{path(Ai1), ...} -> path(Aj)``;
    * for every subschema ``Gi`` nested in ``Gj``:
      ``{path(Gj), path(Ai1), ..., path(Aim)} -> path(Gi)`` where the
      ``Ai*`` are the atomic attributes of ``Gi``;
    * for the top schema: ``{path(B1), ..., path(Bk)} -> path(G1)``
      over its atomic attributes.
    """
    sigma: list[FD] = []
    for fd in fds:
        sigma.append(FD(
            lhs=frozenset(attribute_path(schema, a, root=root)
                          for a in fd.lhs),
            rhs=frozenset(attribute_path(schema, a, root=root)
                          for a in fd.rhs),
        ))
    for sub in schema.walk():
        parent = schema.parent_of(sub.name)
        if parent is None:
            if sub.atomic:
                sigma.append(FD(
                    lhs=frozenset(attribute_path(schema, a, root=root)
                                  for a in sub.atomic),
                    rhs=frozenset({schema_path(schema, sub.name,
                                               root=root)}),
                ))
            continue
        lhs: set[Path] = {schema_path(schema, parent.name, root=root)}
        lhs.update(attribute_path(schema, a, root=root)
                   for a in sub.atomic)
        sigma.append(FD(
            lhs=frozenset(lhs),
            rhs=frozenset({schema_path(schema, sub.name, root=root)}),
        ))
    return sigma


def encode_nested_relation(relation: NestedRelation, *,
                           root: str = "db") -> XMLTree:
    """A nested instance as an XML document conforming to ``D_G``."""
    tree = XMLTree()
    db = tree.add_node(root)

    def build(rel: NestedRelation, parent: str) -> None:
        for tuple_ in rel.tuples:
            node = tree.add_node(
                rel.schema.name, parent=parent,
                attrs={"@" + a: v for a, v in tuple_.values.items()})
            for child in rel.schema.children:
                build(tuple_.nested[child.name], node)

    build(relation, db)
    return tree.freeze()
