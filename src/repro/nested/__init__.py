"""Nested relations, PNF and NNF — the Section 5 comparison target.

A nested schema is ``X`` (a set of atomic attributes) or
``X(G1)* ... (Gn)*`` with nested subschemas; instances nest relations
inside tuples (Figure 3).  The paper relates its XML normal form to the
Nested Normal Form (NNF) of Özsoyoğlu–Yuan / Mok–Ng–Embley via the
canonical coding of nested schemas as DTDs (Proposition 5).
"""

from repro.nested.schema import NestedSchema
from repro.nested.instance import NestedRelation
from repro.nested.unnest import complete_unnesting
from repro.nested.pnf import is_in_pnf
from repro.nested.nnf import ancestor_attributes, is_in_nnf
from repro.nested.xml_coding import (
    encode_nested_relation,
    nested_dtd,
    nested_sigma,
    schema_path,
)

__all__ = [
    "NestedSchema", "NestedRelation", "complete_unnesting", "is_in_pnf",
    "is_in_nnf", "ancestor_attributes",
    "nested_dtd", "nested_sigma", "schema_path", "encode_nested_relation",
]
