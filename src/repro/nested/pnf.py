"""Partition Normal Form (PNF) for nested relations (Section 5).

A nested relation is in PNF when (1) tuples agreeing on the atomic
attributes have *equal* nested components, and (2) every nested
component is itself in PNF.  Normalization theory for nested relations
is usually stated for PNF instances, and the paper shows PNF is
enforceable by FDs on the XML coding.
"""

from __future__ import annotations

from repro.nested.instance import NestedRelation


def is_in_pnf(relation: NestedRelation) -> bool:
    """The recursive PNF test."""
    seen: dict[tuple, dict] = {}
    for tuple_ in relation.tuples:
        key = tuple(tuple_.values[a] for a in relation.schema.atomic)
        canon = {
            name: _canonical(nested)
            for name, nested in tuple_.nested.items()
        }
        if key in seen and seen[key] != canon:
            return False
        seen[key] = canon
    return all(
        is_in_pnf(nested)
        for tuple_ in relation.tuples
        for nested in tuple_.nested.values())


def _canonical(relation: NestedRelation):
    """Order-insensitive canonical form of an instance."""
    return frozenset(
        (tuple(t.values[a] for a in relation.schema.atomic),
         frozenset((name, _canonical(nested))
                   for name, nested in t.nested.items()))
        for t in relation.tuples)
