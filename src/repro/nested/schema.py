"""Nested relation schemas: ``X(G1)* ... (Gn)*`` (Section 5).

Example (Figure 3)::

    H3 = NestedSchema("H3", ("City",))
    H2 = NestedSchema("H2", ("State",), (H3,))
    H1 = NestedSchema("H1", ("Country",), (H2,))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import ReproError


@dataclass(frozen=True)
class NestedSchema:
    """A nested relation schema with atomic attributes and nested
    subschemas."""

    name: str
    atomic: tuple[str, ...]
    children: tuple["NestedSchema", ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "atomic", tuple(self.atomic))
        object.__setattr__(self, "children", tuple(self.children))
        names = [s.name for s in self.walk()]
        if len(set(names)) != len(names):
            raise ReproError(
                f"subschema names must be unique, got {names}")
        attrs = [a for s in self.walk() for a in s.atomic]
        if len(set(attrs)) != len(attrs):
            raise ReproError(
                f"atomic attributes must be unique across the schema, "
                f"got {attrs}")

    def walk(self) -> Iterator["NestedSchema"]:
        """This schema and all subschemas, preorder."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "NestedSchema":
        for schema in self.walk():
            if schema.name == name:
                return schema
        raise ReproError(f"no subschema named {name!r}")

    def parent_of(self, name: str) -> "NestedSchema | None":
        for schema in self.walk():
            if any(child.name == name for child in schema.children):
                return schema
        return None

    def schema_of_attribute(self, attribute: str) -> "NestedSchema":
        for schema in self.walk():
            if attribute in schema.atomic:
                return schema
        raise ReproError(f"no atomic attribute {attribute!r}")

    @property
    def all_attributes(self) -> tuple[str, ...]:
        """``U``: every atomic attribute, document order."""
        return tuple(a for s in self.walk() for a in s.atomic)

    def __str__(self) -> str:
        inner = "".join(f"({child})*" for child in self.children)
        return f"{self.name} = {{{', '.join(self.atomic)}}}{inner}"
