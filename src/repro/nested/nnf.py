"""Nested Normal Form (NNF) — the Section 5 presentation of [22, 23].

For a nested schema ``G`` with FDs ``FD`` over its atomic attributes:
``(G, FD)`` is in NNF iff for every non-trivial implied FD ``X -> A``
(``A`` atomic), ``X -> ancestor(A)`` is also implied, where
``ancestor(A)`` is the union of the atomic attributes of every
subschema along ``path(R)`` for the subschema ``R`` owning ``A``
(e.g. ``ancestor(State) = {Country, State}`` in Figure 3).

Implication ``(G, FD)+`` here is classical Armstrong implication over
the complete unnesting: every flat relation over ``U`` can be nested
back into a PNF instance of ``G`` (group repeatedly), so FDs on
unnestings behave exactly like relational FDs.  This keeps the NNF side
of Proposition 5 independent of the XML machinery it is compared
against.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.nested.schema import NestedSchema
from repro.relational.schema import RelationalFD, armstrong_closure


def ancestor_attributes(schema: NestedSchema,
                        attribute: str) -> frozenset[str]:
    """``ancestor(A)``: atomic attributes of every schema on the path
    from the root subschema to the owner of ``A`` (inclusive)."""
    owner = schema.schema_of_attribute(attribute)
    chain: list[NestedSchema] = []
    current: NestedSchema | None = owner
    while current is not None:
        chain.append(current)
        parent = schema.parent_of(current.name)
        current = parent
    attrs: set[str] = set()
    for sub in chain:
        attrs.update(sub.atomic)
    return frozenset(attrs)


def nnf_violations(schema: NestedSchema,
                   fds: Iterable[RelationalFD]) -> list[RelationalFD]:
    """Implied non-trivial ``X -> A`` with ``X -> ancestor(A)`` not
    implied (enumerating LHS subsets of ``U``)."""
    fds = list(fds)
    universe = sorted(schema.all_attributes)
    violations: list[RelationalFD] = []
    for size in range(1, len(universe) + 1):
        for combo in itertools.combinations(universe, size):
            lhs = frozenset(combo)
            closure = armstrong_closure(lhs, fds)
            for attr in sorted(closure - lhs):
                if attr not in universe:
                    continue
                if not ancestor_attributes(schema, attr) <= closure:
                    violations.append(
                        RelationalFD(lhs, frozenset({attr})))
    return violations


def is_in_nnf(schema: NestedSchema,
              fds: Iterable[RelationalFD]) -> bool:
    """Whether ``(G, FD)`` is in Nested Normal Form."""
    return not nnf_violations(schema, list(fds))
