"""Nested relation instances (Figure 3a)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.errors import ReproError
from repro.nested.schema import NestedSchema


@dataclass
class NestedTuple:
    """One tuple: atomic values plus one nested relation per child."""

    values: dict[str, str]
    nested: dict[str, "NestedRelation"] = field(default_factory=dict)


@dataclass
class NestedRelation:
    """An instance of a nested schema: a list of nested tuples."""

    schema: NestedSchema
    tuples: list[NestedTuple] = field(default_factory=list)

    @classmethod
    def build(cls, schema: NestedSchema, rows: Iterable[Mapping]) -> \
            "NestedRelation":
        """Build from nested dict literals::

            NestedRelation.build(H1, [
                {"Country": "United States", "H2": [
                    {"State": "Texas", "H3": [{"City": "Houston"},
                                              {"City": "Dallas"}]},
                ]},
            ])
        """
        relation = cls(schema)
        for row in rows:
            values = {}
            nested = {}
            for attr in schema.atomic:
                if attr not in row:
                    raise ReproError(
                        f"row misses atomic attribute {attr!r} "
                        f"of {schema.name}")
                values[attr] = row[attr]
            for child in schema.children:
                nested[child.name] = cls.build(child, row.get(child.name, []))
            extraneous = set(row) - set(schema.atomic) - {
                child.name for child in schema.children}
            if extraneous:
                raise ReproError(
                    f"row mentions unknown keys {sorted(extraneous)} "
                    f"for {schema.name}")
            relation.tuples.append(NestedTuple(values, nested))
        return relation

    def to_rows(self) -> list[dict]:
        """Back to nested dict literals."""
        rows: list[dict] = []
        for tuple_ in self.tuples:
            row: dict = dict(tuple_.values)
            for name, relation in tuple_.nested.items():
                row[name] = relation.to_rows()
            rows.append(row)
        return rows

    def __len__(self) -> int:
        return len(self.tuples)
