"""The relational → XML coding of Section 5 (Proposition 4).

A schema ``G(A1, ..., An)`` becomes the flat DTD

    <!ELEMENT db (G*)>
    <!ELEMENT G EMPTY>
    <!ATTLIST G A1 CDATA #REQUIRED ... An CDATA #REQUIRED>

and a set ``F`` of relational FDs becomes ``Σ_F``: each
``Ai1 ... Aim -> Aj`` maps to ``{db.G.@Ai1, ...} -> db.G.@Aj``, plus
``{db.G.@A1, ..., db.G.@An} -> db.G`` to forbid duplicate rows.

Proposition 4: ``(G, F)`` is in BCNF iff ``(D_G, Σ_F)`` is in XNF —
verified executably in the test suite over random schemas.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.dtd.model import DTD
from repro.dtd.paths import Path
from repro.fd.model import FD
from repro.regex.ast import EPSILON, star, sym
from repro.relational.schema import RelationalFD, RelationSchema
from repro.xmltree.model import XMLTree


def relational_dtd(schema: RelationSchema, *, root: str = "db") -> DTD:
    """``D_G``: the flat XML coding of a relational schema."""
    return DTD(
        root=root,
        productions={root: star(sym(schema.name)),
                     schema.name: EPSILON},
        attributes={schema.name: frozenset(
            "@" + attr for attr in schema.attributes)},
    )


def row_path(schema: RelationSchema, *, root: str = "db") -> Path:
    """``db.G``: the path of a coded row."""
    return Path.root(root).child(schema.name)


def attr_path(schema: RelationSchema, attribute: str, *,
              root: str = "db") -> Path:
    """``db.G.@A``: the path of a coded attribute."""
    return row_path(schema, root=root).attribute(attribute)


def relational_sigma(schema: RelationSchema,
                     fds: Iterable[RelationalFD], *,
                     root: str = "db") -> list[FD]:
    """``Σ_F``: coded FDs plus the no-duplicate-rows key."""
    sigma: list[FD] = []
    for fd in fds:
        sigma.append(FD(
            lhs=frozenset(attr_path(schema, a, root=root) for a in fd.lhs),
            rhs=frozenset(attr_path(schema, a, root=root) for a in fd.rhs),
        ))
    sigma.append(FD(
        lhs=frozenset(attr_path(schema, a, root=root)
                      for a in schema.attributes),
        rhs=frozenset({row_path(schema, root=root)}),
    ))
    return sigma


def encode_relation(schema: RelationSchema,
                    rows: Iterable[Mapping[str, str]], *,
                    root: str = "db") -> XMLTree:
    """A relation instance as a flat XML document conforming to
    ``D_G``."""
    tree = XMLTree()
    db = tree.add_node(root)
    for row in rows:
        tree.add_node(schema.name, parent=db,
                      attrs={"@" + a: row[a] for a in schema.attributes})
    return tree.freeze()


def decode_relation(schema: RelationSchema, tree: XMLTree,
                    ) -> list[dict[str, str]]:
    """Back from the flat XML document to relation rows."""
    assert tree.root is not None
    rows: list[dict[str, str]] = []
    for node in tree.children(tree.root):
        rows.append({
            attr: tree.attr(node, attr) or ""
            for attr in schema.attributes
        })
    return rows
