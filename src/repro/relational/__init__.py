"""Classical relational normalization and incomplete relations.

Substrate for two parts of the paper:

* **Proposition 4** — BCNF coincides with XNF under the canonical
  coding of relational schemas as flat XML (:mod:`xml_coding`); this
  package supplies the relational side: Armstrong implication, keys,
  BCNF, and the classical BCNF decomposition.
* **Section 6's losslessness** — defined over relations with nulls
  evaluated under Codd-table semantics (:mod:`codd`).
"""

from repro.relational.schema import (
    RelationalFD,
    RelationSchema,
    armstrong_closure,
    bcnf_decompose,
    candidate_keys,
    implies_relational,
    is_in_bcnf,
    is_superkey,
)
from repro.relational.codd import CoddTable
from repro.relational.xml_coding import (
    decode_relation,
    encode_relation,
    relational_dtd,
    relational_sigma,
)

__all__ = [
    "RelationSchema", "RelationalFD", "armstrong_closure",
    "implies_relational", "is_superkey", "candidate_keys", "is_in_bcnf",
    "bcnf_decompose", "CoddTable",
    "relational_dtd", "relational_sigma", "encode_relation",
    "decode_relation",
]
