"""Codd tables: relations with nulls and a small relational algebra.

The paper evaluates the relational-algebra queries of its losslessness
definition (Section 6) "using the semantics of Codd tables": a null
(⊥, here ``None``) is an unknown value; comparisons involving a null do
not hold, so selections and joins drop rows whose compared fields are
null, while projections and unions carry nulls through.

FD satisfaction on a Codd table follows Atzeni–Morfuni (and Section 4
of the paper): rows that agree, non-null, on the LHS must agree —
null-tolerantly — on the RHS.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ReproError

Row = dict[str, "str | None"]


class CoddTable:
    """An unordered relation with nulls (a set of rows)."""

    def __init__(self, attributes: Sequence[str],
                 rows: Iterable[Mapping[str, str | None]] = ()) -> None:
        self.attributes = tuple(attributes)
        if len(set(self.attributes)) != len(self.attributes):
            raise ReproError("duplicate attribute names in Codd table")
        self._rows: set[tuple[str | None, ...]] = set()
        for row in rows:
            self.add(row)

    # -- basic access --------------------------------------------------------

    def add(self, row: Mapping[str, str | None]) -> None:
        unknown = set(row) - set(self.attributes)
        if unknown:
            raise ReproError(f"row mentions unknown attributes {unknown}")
        self._rows.add(tuple(row.get(a) for a in self.attributes))

    @property
    def rows(self) -> list[Row]:
        return [dict(zip(self.attributes, values))
                for values in sorted(self._rows,
                                     key=lambda v: tuple(map(_sort_key, v)))]

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoddTable):
            return NotImplemented
        if set(self.attributes) != set(other.attributes):
            return False
        reordered = {
            tuple(dict(zip(other.attributes, values)).get(a)
                  for a in self.attributes)
            for values in other._rows
        }
        return self._rows == reordered

    def __hash__(self) -> int:  # tables are mutable: identity hashing
        return id(self)

    # -- FDs ------------------------------------------------------------------

    def satisfies_fd(self, lhs: Iterable[str], rhs: Iterable[str]) -> bool:
        """Atzeni–Morfuni FD satisfaction (nulls on the LHS disable the
        constraint; RHS equality is null-tolerant)."""
        lhs = list(lhs)
        rhs = list(rhs)
        groups: dict[tuple, tuple] = {}
        for row in self.rows:
            key = tuple(row.get(a) for a in lhs)
            if any(value is None for value in key):
                continue
            value = tuple(row.get(a) for a in rhs)
            if key in groups and groups[key] != value:
                return False
            groups.setdefault(key, value)
        return True

    # -- algebra ----------------------------------------------------------------

    def project(self, attrs: Sequence[str]) -> "CoddTable":
        """π: keep the listed attributes (nulls carried through)."""
        missing = set(attrs) - set(self.attributes)
        if missing:
            raise ReproError(f"cannot project onto unknown {missing}")
        result = CoddTable(attrs)
        for row in self.rows:
            result.add({a: row[a] for a in attrs})
        return result

    def select(self, predicate: Callable[[Row], bool]) -> "CoddTable":
        """σ with an arbitrary row predicate (the caller is responsible
        for null-safety; use :meth:`select_eq` for Codd semantics)."""
        result = CoddTable(self.attributes)
        for row in self.rows:
            if predicate(row):
                result.add(row)
        return result

    def select_eq(self, left: str, right_attr_or_value: str, *,
                  value: bool = False) -> "CoddTable":
        """σ(left = right): Codd semantics — rows where either side is
        null are dropped."""
        def predicate(row: Row) -> bool:
            a = row.get(left)
            b = right_attr_or_value if value else row.get(
                right_attr_or_value)
            return a is not None and b is not None and a == b

        return self.select(predicate)

    def rename(self, mapping: Mapping[str, str]) -> "CoddTable":
        """ρ: rename attributes."""
        new_attrs = [mapping.get(a, a) for a in self.attributes]
        result = CoddTable(new_attrs)
        for row in self.rows:
            result.add({mapping.get(a, a): v for a, v in row.items()})
        return result

    def natural_join(self, other: "CoddTable") -> "CoddTable":
        """⋈: rows join only when the shared attributes are non-null and
        equal (Codd semantics)."""
        shared = [a for a in self.attributes if a in other.attributes]
        merged_attrs = list(self.attributes) + [
            a for a in other.attributes if a not in self.attributes]
        result = CoddTable(merged_attrs)
        for row in self.rows:
            for other_row in other.rows:
                if all(row[a] is not None and row[a] == other_row[a]
                       for a in shared):
                    merged = dict(row)
                    merged.update(
                        {a: other_row[a] for a in other.attributes
                         if a not in self.attributes})
                    result.add(merged)
        return result

    def union(self, other: "CoddTable") -> "CoddTable":
        if set(self.attributes) != set(other.attributes):
            raise ReproError("union requires identical attribute sets")
        result = CoddTable(self.attributes)
        for row in self.rows:
            result.add(row)
        for row in other.rows:
            result.add(row)
        return result

    def difference(self, other: "CoddTable") -> "CoddTable":
        if set(self.attributes) != set(other.attributes):
            raise ReproError("difference requires identical attribute sets")
        result = CoddTable(self.attributes)
        other_rows = {tuple(row.get(a) for a in self.attributes)
                      for row in other.rows}
        for row in self.rows:
            if tuple(row.get(a) for a in self.attributes) not in other_rows:
                result.add(row)
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoddTable({self.attributes}, {len(self)} rows)"


def _sort_key(value: str | None) -> tuple[int, str]:
    return (0, "") if value is None else (1, value)


def tuples_table(dtd, tree) -> CoddTable:
    """``tuples_D(T)`` as a Codd table over ``paths(D)`` — the relational
    representation used by the losslessness definition."""
    from repro.tuples.extract import tuples_of

    attributes = [str(p) for p in sorted(dtd.paths, key=str)]
    table = CoddTable(attributes)
    for tuple_ in tuples_of(tree, dtd):
        table.add({str(p): tuple_.get(p) for p in dtd.paths})
    return table
