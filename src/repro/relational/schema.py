"""Flat relational schemas, Armstrong implication, BCNF.

The textbook toolkit (attribute closure, superkeys, BCNF test, BCNF
decomposition) that the paper's Proposition 4 compares XNF against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import ReproError


@dataclass(frozen=True)
class RelationSchema:
    """A relation schema ``G(A1, ..., An)``."""

    name: str
    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.attributes)) != len(self.attributes):
            raise ReproError(
                f"duplicate attributes in schema {self.name!r}")

    @property
    def attribute_set(self) -> frozenset[str]:
        return frozenset(self.attributes)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


@dataclass(frozen=True)
class RelationalFD:
    """A classical FD ``X -> Y`` over attribute names."""

    lhs: frozenset[str]
    rhs: frozenset[str]

    def __post_init__(self) -> None:
        if not self.lhs or not self.rhs:
            raise ReproError("both sides of an FD must be non-empty")
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))

    @classmethod
    def parse(cls, text: str) -> "RelationalFD":
        """Parse ``A, B -> C`` syntax."""
        left, _, right = text.partition("->")
        if not right:
            raise ReproError(f"missing '->' in relational FD {text!r}")
        return cls(
            lhs=frozenset(a.strip() for a in left.split(",") if a.strip()),
            rhs=frozenset(a.strip() for a in right.split(",") if a.strip()),
        )

    def is_trivial(self) -> bool:
        return self.rhs <= self.lhs

    def __str__(self) -> str:
        return (f"{', '.join(sorted(self.lhs))} -> "
                f"{', '.join(sorted(self.rhs))}")


def armstrong_closure(attrs: Iterable[str],
                      fds: Iterable[RelationalFD]) -> frozenset[str]:
    """The attribute closure ``X+`` under a set of FDs."""
    closure = set(attrs)
    fds = list(fds)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.lhs <= closure and not fd.rhs <= closure:
                closure |= fd.rhs
                changed = True
    return frozenset(closure)


def implies_relational(fds: Iterable[RelationalFD],
                       fd: RelationalFD) -> bool:
    """Armstrong implication: ``F |= X -> Y``."""
    return fd.rhs <= armstrong_closure(fd.lhs, fds)


def is_superkey(schema: RelationSchema, fds: Iterable[RelationalFD],
                attrs: Iterable[str]) -> bool:
    """Whether ``attrs`` functionally determines every attribute."""
    return schema.attribute_set <= armstrong_closure(attrs, fds)


def candidate_keys(schema: RelationSchema,
                   fds: Iterable[RelationalFD]) -> list[frozenset[str]]:
    """All minimal superkeys, smallest first."""
    fds = list(fds)
    keys: list[frozenset[str]] = []
    universe = sorted(schema.attribute_set)
    for size in range(1, len(universe) + 1):
        for combo in itertools.combinations(universe, size):
            candidate = frozenset(combo)
            if any(key <= candidate for key in keys):
                continue
            if is_superkey(schema, fds, candidate):
                keys.append(candidate)
    return keys


def bcnf_violations(schema: RelationSchema,
                    fds: Iterable[RelationalFD]) -> Iterator[RelationalFD]:
    """Non-trivial implied FDs ``X -> A`` whose LHS is not a superkey.

    Candidates range over subsets of the schema's attributes, so the
    enumeration is exponential in the schema width — fine for the
    normalization workloads here.
    """
    fds = [fd for fd in fds]
    universe = sorted(schema.attribute_set)
    for size in range(1, len(universe)):
        for combo in itertools.combinations(universe, size):
            lhs = frozenset(combo)
            closure = armstrong_closure(lhs, fds)
            extra = (closure & schema.attribute_set) - lhs
            if extra and not is_superkey(schema, fds, lhs):
                for attr in sorted(extra):
                    yield RelationalFD(lhs, frozenset({attr}))


def is_in_bcnf(schema: RelationSchema,
               fds: Iterable[RelationalFD]) -> bool:
    """Boyce–Codd Normal Form: every non-trivial FD defines a key."""
    return next(iter(bcnf_violations(schema, list(fds))), None) is None


def project_fds(fds: Iterable[RelationalFD],
                attrs: frozenset[str]) -> list[RelationalFD]:
    """The projection of a set of FDs onto an attribute subset (via
    closures of all LHS subsets — the standard, exponential recipe)."""
    fds = list(fds)
    projected: list[RelationalFD] = []
    for size in range(1, len(attrs) + 1):
        for combo in itertools.combinations(sorted(attrs), size):
            lhs = frozenset(combo)
            closure = armstrong_closure(lhs, fds)
            rhs = (closure & attrs) - lhs
            if rhs:
                projected.append(RelationalFD(lhs, rhs))
    return projected


def bcnf_decompose(schema: RelationSchema, fds: Iterable[RelationalFD],
                   ) -> list[tuple[RelationSchema, list[RelationalFD]]]:
    """The classical BCNF decomposition (lossless, not necessarily
    dependency-preserving)."""
    fds = list(fds)
    result: list[tuple[RelationSchema, list[RelationalFD]]] = []
    worklist: list[tuple[RelationSchema, list[RelationalFD]]] = [
        (schema, fds)]
    counter = 0
    while worklist:
        current, current_fds = worklist.pop()
        violation = next(iter(bcnf_violations(current, current_fds)), None)
        if violation is None:
            result.append((current, current_fds))
            continue
        closure = armstrong_closure(violation.lhs, current_fds)
        left_attrs = frozenset(closure & current.attribute_set)
        right_attrs = (current.attribute_set - left_attrs) | violation.lhs
        counter += 1
        left = RelationSchema(f"{current.name}_{counter}a",
                              tuple(sorted(left_attrs)))
        counter += 1
        right = RelationSchema(f"{current.name}_{counter}b",
                               tuple(sorted(right_attrs)))
        worklist.append((left, project_fds(current_fds, left_attrs)))
        worklist.append((right, project_fds(current_fds,
                                            frozenset(right_attrs))))
    return result
