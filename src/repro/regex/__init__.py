"""Regular expressions for DTD content models.

This package implements the regular-expression fragment of Definition 1
of the paper: ``a ::= S | tau | e | a|a | a,a | a*`` plus the standard
DTD abbreviations ``a?`` (= ``a|e``) and ``a+`` (= ``a,a*``).

Modules
-------
``ast``
    Immutable expression nodes with smart constructors.
``parser``
    Parser for DTD content-model syntax (``(title, taken_by)`` etc.).
``matching``
    Word and multiset (permutation) membership via Brzozowski
    derivatives.
``analysis``
    Per-symbol occurrence bounds and multiplicity classes.
``classify``
    The paper's Section 7 taxonomy: trivial, simple, simple
    disjunction, and disjunctive productions, plus the ``N_s`` measure.
"""

from repro.regex.ast import (
    EMPTY_SET,
    EPSILON,
    PCDATA,
    Concat,
    Epsilon,
    EmptySet,
    Optional,
    PCData,
    Plus,
    Regex,
    Star,
    Sym,
    Union,
    concat,
    optional,
    plus,
    star,
    sym,
    union,
)
from repro.regex.parser import parse_content_model, parse_regex
from repro.regex.matching import matches, matches_multiset
from repro.regex.analysis import (
    Multiplicity,
    occurrence_bounds,
    symbol_multiplicities,
)
from repro.regex.classify import (
    disjunction_measure,
    is_disjunctive_production,
    is_simple,
    is_simple_disjunction,
    is_trivial,
    simple_multiplicities,
)

__all__ = [
    "Regex", "Epsilon", "EmptySet", "PCData", "Sym", "Union", "Concat",
    "Star", "Plus", "Optional",
    "EPSILON", "EMPTY_SET", "PCDATA",
    "sym", "union", "concat", "star", "plus", "optional",
    "parse_regex", "parse_content_model",
    "matches", "matches_multiset",
    "Multiplicity", "occurrence_bounds", "symbol_multiplicities",
    "is_trivial", "is_simple", "is_simple_disjunction",
    "is_disjunctive_production", "disjunction_measure",
    "simple_multiplicities",
]
