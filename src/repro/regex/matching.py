"""Word and multiset membership for content-model regexes.

Implemented with Brzozowski derivatives over the smart constructors of
:mod:`repro.regex.ast`, which keep the derivative terms normalized and
small.  Two entry points:

``matches(regex, word)``
    Ordered membership — used for conformance checking ``T |= D``
    (Definition 3), where children of a node form an ordered word.

``matches_multiset(regex, counts)``
    Membership *up to permutation* — used when checking conformance of
    the unordered equivalence class ``[T]`` (Section 3): some ordering
    of the multiset of children must be in the language.
"""

from __future__ import annotations

from collections import Counter
from functools import lru_cache
from typing import Iterable, Mapping

from repro.faults import plan as _faults
from repro.guard import budget as _guard
from repro.regex.ast import (
    EMPTY_SET,
    EPSILON,
    Concat,
    Epsilon,
    EmptySet,
    Optional,
    PCData,
    Plus,
    Regex,
    S_SYMBOL,
    Star,
    Sym,
    Union,
    concat,
    star,
    union,
)


_SITE_SEARCH = _faults.register_site(
    "regex.matching.search", "regex",
    "each state of the multiset-membership search")


@lru_cache(maxsize=65536)
def derivative(regex: Regex, symbol: str) -> Regex:
    """Brzozowski derivative: words w with symbol.w in L(regex)."""
    if isinstance(regex, (Epsilon, EmptySet)):
        return EMPTY_SET
    if isinstance(regex, PCData):
        return EPSILON if symbol == S_SYMBOL else EMPTY_SET
    if isinstance(regex, Sym):
        return EPSILON if regex.name == symbol else EMPTY_SET
    if isinstance(regex, Union):
        return union(derivative(p, symbol) for p in regex.parts)
    if isinstance(regex, Concat):
        head, *tail = regex.parts
        rest = concat(tail)
        first = concat([derivative(head, symbol), rest])
        if head.nullable():
            return union([first, derivative(rest, symbol)])
        return first
    if isinstance(regex, Star):
        return concat([derivative(regex.inner, symbol), regex])
    if isinstance(regex, Plus):
        return concat([derivative(regex.inner, symbol),
                       star(regex.inner)])
    if isinstance(regex, Optional):
        return derivative(regex.inner, symbol)
    raise TypeError(f"unknown regex node: {regex!r}")


def matches(regex: Regex, word: Iterable[str]) -> bool:
    """Whether the (ordered) word of symbols belongs to ``L(regex)``."""
    current = regex
    for symbol in word:
        current = derivative(current, symbol)
        if current.is_empty_language():
            return False
    return current.nullable()


def matches_multiset(regex: Regex,
                     counts: Mapping[str, int] | Iterable[str]) -> bool:
    """Whether *some permutation* of the multiset is in ``L(regex)``.

    ``counts`` is either a ``symbol -> count`` mapping or an iterable of
    symbols (counted here).  The search explores derivative states and
    memoizes (state, remaining multiset) pairs; content models are tiny
    in practice so this is fast despite the worst-case blow-up.
    """
    if not isinstance(counts, Mapping):
        counts = Counter(counts)
    remaining = {s: c for s, c in counts.items() if c > 0}
    alphabet = regex.alphabet()
    if any(symbol not in alphabet for symbol in remaining):
        return False
    items = tuple(sorted(remaining.items()))
    budget = _guard.current() if _guard.active else None
    return _search(regex, items, set(), budget)


def _search(state: Regex, items: tuple[tuple[str, int], ...],
            failed: set[tuple[Regex, tuple[tuple[str, int], ...]]],
            budget: "_guard.Budget | None" = None) -> bool:
    if budget is not None:
        budget.tick_steps()
    if _faults.active:
        _faults.fire(_SITE_SEARCH)
    if not items:
        return state.nullable()
    key = (state, items)
    if key in failed:
        return False
    for index, (symbol, count) in enumerate(items):
        nxt = derivative(state, symbol)
        if nxt.is_empty_language():
            continue
        if count == 1:
            rest = items[:index] + items[index + 1:]
        else:
            rest = items[:index] + ((symbol, count - 1),) + items[index + 1:]
        if _search(nxt, rest, failed, budget):
            return True
    failed.add(key)
    return False


def accepts_single_symbol(regex: Regex, symbol: str) -> bool:
    """Whether the one-letter word ``symbol`` is in ``L(regex)``.

    Used by the simplicity test: ``r*`` has a product Parikh image iff
    every occurring symbol is achievable as a one-letter word of ``r``.
    """
    return derivative(regex, symbol).nullable()
