"""The Section 7 taxonomy of content-model regular expressions.

The paper (Section 7) distinguishes:

* **trivial** regexes: ``s1, ..., sn`` where each ``si`` is ``a``,
  ``a?``, ``a+`` or ``a*`` with pairwise-distinct symbols;
* **simple** regexes: permutation-equivalent to a trivial one, i.e.
  their Parikh image (multiset of symbol counts) is a *product* of
  independent per-symbol occurrence classes;
* **simple disjunctions**: ``eps``, a single symbol, or a ``|`` of
  simple disjunctions over disjoint alphabets;
* **disjunctive productions**: ``s1, ..., sm`` where each ``si`` is a
  simple regex or a simple disjunction, over disjoint alphabets —
  together with the measure ``N_s`` that bounds the number of
  disjunction choices (Theorem 4).

Simplicity is decided structurally by computing a Parikh
*factorization*; the structural rules are exact for star and sound
(conservative) elsewhere, so a regex classified as simple always is,
while an exotic regex may fall back to the general (slower) engines.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ReproError
from repro.regex.analysis import (
    Multiplicity,
    add_multiplicity,
    union_multiplicity,
)
from repro.regex.ast import (
    Concat,
    Epsilon,
    EmptySet,
    Optional,
    PCData,
    Plus,
    Regex,
    S_SYMBOL,
    Star,
    Sym,
    Union,
)
from repro.regex.matching import accepts_single_symbol

#: Representative counts used to verify that a union of products is a
#: product; unbounded classes are represented by {min, min + 1}.
_REPRESENTATIVES = {
    Multiplicity.ZERO: (0,),
    Multiplicity.ONE: (1,),
    Multiplicity.OPT: (0, 1),
    Multiplicity.PLUS: (1, 2),
    Multiplicity.STAR: (0, 1, 2),
}

#: Beyond this alphabet size the union-of-products verification would
#: enumerate too many representatives; we answer conservatively.
_MAX_UNION_ALPHABET = 8


def _count_in_class(count: int, cls: Multiplicity) -> bool:
    return cls.min_count <= count <= cls.max_count


Factorization = dict[str, Multiplicity]


@lru_cache(maxsize=16384)
def parikh_factorization(regex: Regex) -> tuple[tuple[str, Multiplicity], ...] | None:
    """Parikh factorization of a regex, or ``None`` if it has none (or
    the structural rules cannot establish one).

    A factorization maps each symbol to an occurrence class such that
    the language's Parikh image equals the product of the classes.
    Returned as a sorted tuple so the result is hashable/cacheable;
    symbols with class ``ZERO`` are omitted.
    """
    result = _factorize(regex)
    if result is None:
        return None
    items = tuple(sorted(
        (symbol, cls) for symbol, cls in result.items()
        if cls is not Multiplicity.ZERO))
    return items


def _factorize(regex: Regex) -> Factorization | None:
    if isinstance(regex, Epsilon):
        return {}
    if isinstance(regex, EmptySet):
        return None
    if isinstance(regex, PCData):
        return {S_SYMBOL: Multiplicity.ONE}
    if isinstance(regex, Sym):
        return {regex.name: Multiplicity.ONE}
    if isinstance(regex, Concat):
        combined: Factorization = {}
        for part in regex.parts:
            factors = _factorize(part)
            if factors is None:
                return None
            for symbol, cls in factors.items():
                if symbol in combined:
                    summed = add_multiplicity(combined[symbol], cls)
                    if summed is None:
                        return None
                    combined[symbol] = summed
                else:
                    combined[symbol] = cls
        return combined
    if isinstance(regex, Union):
        factorizations = []
        for part in regex.parts:
            factors = _factorize(part)
            if factors is None:
                return None
            factorizations.append(factors)
        return _union_of_products(regex, factorizations)
    if isinstance(regex, Star):
        return _factorize_star(regex.inner)
    if isinstance(regex, Plus):
        starred = _factorize_star(regex.inner)
        base = _factorize(regex.inner)
        if starred is None or base is None:
            return None
        result: Factorization = {}
        for symbol in starred:
            cls = add_multiplicity(
                base.get(symbol, Multiplicity.ZERO), Multiplicity.STAR)
            if cls is None:  # pragma: no cover - STAR sums are total
                return None
            result[symbol] = cls
        return result
    if isinstance(regex, Optional):
        base = _factorize(regex.inner)
        if base is None:
            return None
        non_nullable = [s for s, cls in base.items() if cls.min_count >= 1]
        if not non_nullable:
            return base
        if len(non_nullable) > 1:
            # Adding the zero vector to a product missing it in >= 2
            # coordinates never yields a product: (a, b)? and friends.
            return None
        only = non_nullable[0]
        if any(cls.max_count > 0
               for symbol, cls in base.items() if symbol != only):
            # One non-nullable coordinate, but another coordinate can
            # still be non-zero: the zero vector brings no companions
            # for it, so (a, b*)? and friends are not products either.
            return None
        merged = union_multiplicity(base[only], Multiplicity.ZERO)
        assert merged is not None
        result = dict(base)
        result[only] = merged
        return result
    raise TypeError(f"unknown regex node: {regex!r}")


def _factorize_star(inner: Regex) -> Factorization | None:
    """Factorize ``inner*``: exact — the Parikh image of ``r*`` is a
    product iff every occurring symbol is achievable as a one-letter
    word of ``r`` (then every symbol gets class ``STAR``)."""
    alphabet = sorted(inner.alphabet())
    occurring = [s for s in alphabet
                 if not _never_occurs(inner, s)]
    for symbol in occurring:
        if not accepts_single_symbol(inner, symbol):
            return None
    return {symbol: Multiplicity.STAR for symbol in occurring}


def _never_occurs(regex: Regex, symbol: str) -> bool:
    from repro.regex.analysis import occurrence_bounds
    return occurrence_bounds(regex, symbol)[1] == 0


def _union_of_products(
        regex: Union,
        factorizations: list[Factorization]) -> Factorization | None:
    """Whether a union of Parikh products is itself a product.

    The candidate is the per-symbol class union; it is correct iff every
    candidate vector is covered by some branch product, which we verify
    on representative counts (exact for these interval classes as long
    as coverage is checked per vector)."""
    symbols = sorted({s for f in factorizations for s in f})
    candidate: Factorization = {}
    for symbol in symbols:
        cls: Multiplicity | None = None
        for factors in factorizations:
            branch_cls = factors.get(symbol, Multiplicity.ZERO)
            cls = branch_cls if cls is None else union_multiplicity(
                cls, branch_cls)
        assert cls is not None
        candidate[symbol] = cls
    if len(symbols) > _MAX_UNION_ALPHABET:
        # Fall back to the (sound) pairwise containment test.
        for factors in factorizations:
            if not all(_class_subset(factors.get(s, Multiplicity.ZERO),
                                     candidate[s]) for s in symbols):
                return None  # pragma: no cover - containment holds by def
        covering = [f for f in factorizations
                    if all(f.get(s, Multiplicity.ZERO) == candidate[s]
                           for s in symbols)]
        return candidate if covering else None
    # Enumerate representative vectors of the candidate product.
    vectors: list[list[int]] = [[]]
    for symbol in symbols:
        reps = _REPRESENTATIVES[candidate[symbol]]
        vectors = [v + [count] for v in vectors for count in reps]
    for vector in vectors:
        if not any(
            all(_count_in_class(count, f.get(symbol, Multiplicity.ZERO))
                for symbol, count in zip(symbols, vector))
            for f in factorizations
        ):
            return None
    return candidate


def _class_subset(a: Multiplicity, b: Multiplicity) -> bool:
    return union_multiplicity(a, b) == b


# ---------------------------------------------------------------------------
# Public classification predicates
# ---------------------------------------------------------------------------

def is_trivial(regex: Regex) -> bool:
    """Syntactically trivial: ``s1, ..., sn`` with distinct symbols and
    each ``si`` of the form ``a``, ``a?``, ``a+`` or ``a*``."""
    parts: tuple[Regex, ...]
    if isinstance(regex, Concat):
        parts = regex.parts
    else:
        parts = (regex,)
    if isinstance(regex, Epsilon):
        return True
    seen: set[str] = set()
    for part in parts:
        base = part
        if isinstance(part, (Optional, Plus, Star)):
            base = part.inner
        if isinstance(base, PCData):
            name = S_SYMBOL
        elif isinstance(base, Sym):
            name = base.name
        else:
            return False
        if name in seen:
            return False
        seen.add(name)
    return True


def is_simple(regex: Regex) -> bool:
    """Simple in the sense of Section 7: permutation-equivalent to a
    trivial regex (decided via Parikh factorization)."""
    return parikh_factorization(regex) is not None


def simple_multiplicities(regex: Regex) -> dict[str, Multiplicity]:
    """Per-symbol multiplicities of a *simple* regex: the classes of its
    trivial permutation-equivalent.  Symbols that cannot occur are
    omitted.  Raises :class:`ReproError` if the regex is not simple."""
    factors = parikh_factorization(regex)
    if factors is None:
        raise ReproError(f"regex {regex.to_dtd()!r} is not simple")
    return dict(factors)


def trivial_equivalent(regex: Regex) -> Regex:
    """The trivial regex permutation-equivalent to a simple regex."""
    from repro.regex.ast import concat, optional, plus, star, sym

    wrappers = {
        Multiplicity.ONE: lambda r: r,
        Multiplicity.OPT: optional,
        Multiplicity.PLUS: plus,
        Multiplicity.STAR: star,
    }
    parts = []
    for symbol, cls in sorted(simple_multiplicities(regex).items()):
        base: Regex = PCData() if symbol == S_SYMBOL else sym(symbol)
        parts.append(wrappers[cls](base))
    return concat(parts)


def is_simple_disjunction(regex: Regex) -> bool:
    """``eps``, a single symbol, ``s1 | s2`` over disjoint alphabets of
    simple disjunctions, or the ``?`` sugar for ``| eps``."""
    if isinstance(regex, (Epsilon, Sym, PCData)):
        return True
    if isinstance(regex, Optional):
        return is_simple_disjunction(regex.inner)
    if isinstance(regex, Union):
        seen: set[str] = set()
        for part in regex.parts:
            if not is_simple_disjunction(part):
                return False
            alphabet = part.alphabet()
            if alphabet & seen:
                return False
            seen |= alphabet
        return True
    return False


def production_factors(regex: Regex) -> list[Regex]:
    """Top-level concatenation factors of a production."""
    if isinstance(regex, Concat):
        return list(regex.parts)
    return [regex]


def is_disjunctive_production(regex: Regex) -> bool:
    """Disjunctive production (Section 7): ``s1, ..., sm`` where each
    factor is a simple regex or a simple disjunction and the factors'
    alphabets are pairwise disjoint."""
    seen: set[str] = set()
    for factor in production_factors(regex):
        if not (is_simple(factor) or is_simple_disjunction(factor)):
            return False
        alphabet = factor.alphabet()
        if alphabet & seen:
            return False
        seen |= alphabet
    return True


def _count_pipes(regex: Regex) -> int:
    if isinstance(regex, (Epsilon, EmptySet, PCData, Sym)):
        return 0
    if isinstance(regex, Union):
        return (len(regex.parts) - 1) + sum(
            _count_pipes(p) for p in regex.parts)
    if isinstance(regex, Concat):
        return sum(_count_pipes(p) for p in regex.parts)
    if isinstance(regex, Optional):
        return 1 + _count_pipes(regex.inner)
    if isinstance(regex, (Star, Plus)):
        return _count_pipes(regex.inner)
    raise TypeError(f"unknown regex node: {regex!r}")


def disjunction_measure(regex: Regex) -> int:
    """The production-level factor of the measure ``N`` of Section 7.

    ``N_s = 1`` for a simple regex; for a simple disjunction it is the
    number of ``|`` symbols plus one; for a disjunctive production the
    product over its factors.  The DTD-level measure ``N_D``
    (:func:`repro.dtd.classify.disjunction_measure`) multiplies in the
    path counts.
    """
    if is_simple(regex):
        return 1
    factors = production_factors(regex)
    measure = 1
    for factor in factors:
        if is_simple(factor):
            continue
        if is_simple_disjunction(factor):
            measure *= _count_pipes(factor) + 1
        else:
            raise ReproError(
                f"regex {regex.to_dtd()!r} is not a disjunctive production")
    return measure
