"""Parser for DTD content-model regular expressions.

Accepts the syntax used in ``<!ELEMENT>`` declarations::

    EMPTY
    (#PCDATA)
    (title, taken_by)
    (course*, info*)
    (a | b)+
    (Documentation | Start | Transition)*

Grammar (standard DTD content particles)::

    content  := 'EMPTY' | pcdata | particle
    pcdata   := '(' '#PCDATA' ')'
    particle := unit [('|' unit)* | (',' unit)*]   -- no mixing at one level
    unit     := (name | '(' particle ')') ['*' | '+' | '?']
"""

from __future__ import annotations

import re
from typing import NamedTuple

from repro.errors import RegexSyntaxError
from repro.regex.ast import (
    EPSILON,
    PCDATA,
    Regex,
    concat,
    optional,
    plus,
    star,
    sym,
    union,
)

#: Maximum parenthesis-nesting depth of a content model.  The parser is
#: recursive-descent, so without an explicit cap a deeply nested input
#: (``(((...a...)))``) escapes as a raw :class:`RecursionError`; real
#: content models nest a handful of levels, and 200 stays comfortably
#: inside CPython's default recursion limit.
MAX_NESTING_DEPTH = 200

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<pcdata>\#PCDATA)
  | (?P<name>[A-Za-z_][A-Za-z0-9_.:-]*)
  | (?P<punct>[(),|*+?])
    """,
    re.VERBOSE,
)


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise RegexSyntaxError(
                f"unexpected character {text[index]!r} in content model",
                column=index + 1,
            )
        index = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token], text: str, *,
                 max_depth: int = MAX_NESTING_DEPTH) -> None:
        self._tokens = tokens
        self._text = text
        self._pos = 0
        self._depth = 0
        self._max_depth = max_depth

    def peek(self) -> _Token | None:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise RegexSyntaxError(
                f"unexpected end of content model in {self._text!r}")
        self._pos += 1
        return token

    def expect(self, value: str) -> _Token:
        token = self.next()
        if token.value != value:
            raise RegexSyntaxError(
                f"expected {value!r} but found {token.value!r}",
                column=token.position + 1,
            )
        return token

    def at_end(self) -> bool:
        return self._pos >= len(self._tokens)

    # -- grammar ----------------------------------------------------------

    def parse_particle(self) -> Regex:
        first = self.parse_unit()
        token = self.peek()
        if token is None or token.value not in {"|", ","}:
            return first
        separator = token.value
        parts = [first]
        while (token := self.peek()) is not None and token.value in {"|", ","}:
            if token.value != separator:
                raise RegexSyntaxError(
                    "cannot mix '|' and ',' at the same nesting level",
                    column=token.position + 1,
                )
            self.next()
            parts.append(self.parse_unit())
        if separator == "|":
            return union(parts)
        return concat(parts)

    def parse_unit(self) -> Regex:
        token = self.next()
        if token.value == "(":
            self._depth += 1
            if self._depth > self._max_depth:
                raise RegexSyntaxError(
                    f"content model nested deeper than {self._max_depth} "
                    f"levels (offending depth {self._depth})",
                    column=token.position + 1,
                )
            inner = self.parse_particle()
            self.expect(")")
            self._depth -= 1
            base = inner
        elif token.kind == "name":
            base = sym(token.value)
        elif token.kind == "pcdata":
            base = PCDATA
        else:
            raise RegexSyntaxError(
                f"unexpected token {token.value!r} in content model",
                column=token.position + 1,
            )
        nxt = self.peek()
        if nxt is not None and nxt.value in {"*", "+", "?"}:
            self.next()
            if nxt.value == "*":
                return star(base)
            if nxt.value == "+":
                return plus(base)
            return optional(base)
        return base


def parse_content_model(text: str, *,
                        max_depth: int = MAX_NESTING_DEPTH) -> Regex:
    """Parse the content model of an ``<!ELEMENT>`` declaration.

    ``EMPTY`` yields :data:`~repro.regex.ast.EPSILON`, ``(#PCDATA)``
    yields :data:`~repro.regex.ast.PCDATA`, anything else a regex over
    element names.  Nesting beyond ``max_depth`` raises
    :class:`~repro.errors.RegexSyntaxError` (never a raw
    ``RecursionError``).
    """
    stripped = text.strip()
    if stripped == "EMPTY":
        return EPSILON
    if stripped in {"(#PCDATA)", "#PCDATA"}:
        return PCDATA
    if stripped == "ANY":
        raise RegexSyntaxError(
            "ANY content is outside the paper's DTD fragment (Definition 1)")
    tokens = _tokenize(stripped)
    parser = _Parser(tokens, stripped, max_depth=max_depth)
    result = parser.parse_particle()
    if not parser.at_end():
        extra = parser.peek()
        assert extra is not None
        raise RegexSyntaxError(
            f"trailing input {extra.value!r} after content model",
            column=extra.position + 1,
        )
    return result


def parse_regex(text: str) -> Regex:
    """Alias of :func:`parse_content_model` for expression-level use."""
    return parse_content_model(text)
