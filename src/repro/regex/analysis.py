"""Occurrence analysis of content-model regexes.

Computes, for each symbol, the exact minimum and maximum number of
occurrences over all words of the language, and classifies symbols into
the multiplicity classes that drive both the Section 7 simplicity test
and the FD closure engine:

========== =====================
class      occurrence set
========== =====================
``ZERO``   {0}
``ONE``    {1}
``OPT``    {0, 1}
``PLUS``   {1, 2, 3, ...}
``STAR``   {0, 1, 2, ...}
========== =====================

A symbol whose occurrence set is not one of these (e.g. exactly two, as
in ``(b, b)``) has multiplicity ``None``; such productions are not
simple.
"""

from __future__ import annotations

import enum
import math
from functools import lru_cache

from repro.regex.ast import (
    Concat,
    Epsilon,
    EmptySet,
    Optional,
    PCData,
    Plus,
    Regex,
    S_SYMBOL,
    Star,
    Sym,
    Union,
)


class Multiplicity(enum.Enum):
    """Occurrence class of a symbol in a content model."""

    ZERO = "zero"
    ONE = "one"
    OPT = "opt"
    PLUS = "plus"
    STAR = "star"

    @property
    def min_count(self) -> int:
        """Least achievable occurrence count."""
        return 1 if self in (Multiplicity.ONE, Multiplicity.PLUS) else 0

    @property
    def max_count(self) -> float:
        """Greatest achievable occurrence count (``inf`` if unbounded)."""
        if self in (Multiplicity.PLUS, Multiplicity.STAR):
            return math.inf
        return 0 if self is Multiplicity.ZERO else 1

    @property
    def forced(self) -> bool:
        """Whether at least one occurrence is guaranteed."""
        return self.min_count >= 1

    @property
    def at_most_one(self) -> bool:
        """Whether no word can contain two occurrences."""
        return self.max_count <= 1

    def to_suffix(self) -> str:
        """DTD occurrence suffix for a trivial regex (``""``, ``?``, ...)."""
        return {
            Multiplicity.ONE: "",
            Multiplicity.OPT: "?",
            Multiplicity.PLUS: "+",
            Multiplicity.STAR: "*",
        }.get(self, "")


def multiplicity_from_bounds(low: int, high: float) -> Multiplicity | None:
    """Map exact occurrence bounds to a class, or ``None`` if no class
    matches (the occurrence set must additionally be an interval, which
    holds for all bounds produced by :func:`occurrence_bounds` on
    expressions containing ``*``/``+``/``?``/``|`` pumping — see note in
    :func:`symbol_multiplicities`)."""
    if (low, high) == (0, 0):
        return Multiplicity.ZERO
    if (low, high) == (1, 1):
        return Multiplicity.ONE
    if (low, high) == (0, 1):
        return Multiplicity.OPT
    if low == 1 and high == math.inf:
        return Multiplicity.PLUS
    if low == 0 and high == math.inf:
        return Multiplicity.STAR
    return None


def add_multiplicity(a: Multiplicity | None,
                     b: Multiplicity | None) -> Multiplicity | None:
    """Minkowski sum of two occurrence classes (concatenation)."""
    if a is None or b is None:
        return None
    if a is Multiplicity.ZERO:
        return b
    if b is Multiplicity.ZERO:
        return a
    table = {
        frozenset({Multiplicity.ONE, Multiplicity.STAR}): Multiplicity.PLUS,
        frozenset({Multiplicity.OPT, Multiplicity.PLUS}): Multiplicity.PLUS,
        frozenset({Multiplicity.OPT, Multiplicity.STAR}): Multiplicity.STAR,
        frozenset({Multiplicity.PLUS, Multiplicity.STAR}): Multiplicity.PLUS,
        frozenset({Multiplicity.STAR}): Multiplicity.STAR,
    }
    return table.get(frozenset({a, b}))


def union_multiplicity(a: Multiplicity | None,
                       b: Multiplicity | None) -> Multiplicity | None:
    """Union of two occurrence classes (alternation); always defined for
    defined inputs because the class lattice is closed under union."""
    if a is None or b is None:
        return None
    if a is b:
        return a
    pair = frozenset({a, b})
    table = {
        frozenset({Multiplicity.ZERO, Multiplicity.ONE}): Multiplicity.OPT,
        frozenset({Multiplicity.ZERO, Multiplicity.OPT}): Multiplicity.OPT,
        frozenset({Multiplicity.ZERO, Multiplicity.PLUS}): Multiplicity.STAR,
        frozenset({Multiplicity.ZERO, Multiplicity.STAR}): Multiplicity.STAR,
        frozenset({Multiplicity.ONE, Multiplicity.OPT}): Multiplicity.OPT,
        frozenset({Multiplicity.ONE, Multiplicity.PLUS}): Multiplicity.PLUS,
        frozenset({Multiplicity.ONE, Multiplicity.STAR}): Multiplicity.STAR,
        frozenset({Multiplicity.OPT, Multiplicity.PLUS}): Multiplicity.STAR,
        frozenset({Multiplicity.OPT, Multiplicity.STAR}): Multiplicity.STAR,
        frozenset({Multiplicity.PLUS, Multiplicity.STAR}): Multiplicity.STAR,
    }
    return table[pair]


@lru_cache(maxsize=65536)
def occurrence_bounds(regex: Regex, symbol: str) -> tuple[int, float]:
    """Exact (min, max) occurrence counts of ``symbol`` over ``L(regex)``.

    ``max`` is ``math.inf`` when unbounded.  For the empty language the
    bounds are vacuous and reported as ``(0, 0)``.
    """
    if isinstance(regex, (Epsilon, EmptySet)):
        return (0, 0)
    if isinstance(regex, PCData):
        return (1, 1) if symbol == S_SYMBOL else (0, 0)
    if isinstance(regex, Sym):
        return (1, 1) if regex.name == symbol else (0, 0)
    if isinstance(regex, Union):
        bounds = [occurrence_bounds(p, symbol) for p in regex.parts]
        return (min(b[0] for b in bounds), max(b[1] for b in bounds))
    if isinstance(regex, Concat):
        bounds = [occurrence_bounds(p, symbol) for p in regex.parts]
        low = sum(b[0] for b in bounds)
        high = sum(b[1] for b in bounds)
        return (low, high)
    if isinstance(regex, Star):
        _, high = occurrence_bounds(regex.inner, symbol)
        return (0, 0) if high == 0 else (0, math.inf)
    if isinstance(regex, Plus):
        low, high = occurrence_bounds(regex.inner, symbol)
        return (low, 0) if high == 0 else (low, math.inf)
    if isinstance(regex, Optional):
        _, high = occurrence_bounds(regex.inner, symbol)
        return (0, high)
    raise TypeError(f"unknown regex node: {regex!r}")


def symbol_multiplicities(regex: Regex) -> dict[str, Multiplicity | None]:
    """Per-symbol multiplicity classes of a content model.

    Bounds alone do not prove the occurrence set is an interval (e.g.
    ``(a, a)?`` has bounds (0, 2) but occurrence set {0, 2}); bound pairs
    that map to no class yield ``None``, and the only interval-shaped
    bounds that can hide a gap are unbounded ones, which cannot arise
    for gapped sets here because pumping a ``*``/``+`` adds occurrences
    one word at a time.  The simplicity test in
    :mod:`repro.regex.classify` performs the stronger cross-symbol
    independence check on top of this map.
    """
    return {
        symbol: multiplicity_from_bounds(*occurrence_bounds(regex, symbol))
        for symbol in sorted(regex.alphabet())
    }
