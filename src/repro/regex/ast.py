"""Immutable AST for DTD content-model regular expressions.

The grammar follows Definition 1 of the paper:

    a ::= S | tau | epsilon | a "|" a | a "," a | a "*"

``S`` stands for ``#PCDATA`` and ``epsilon`` for ``EMPTY``.  The usual
DTD abbreviations ``a?`` and ``a+`` are first-class nodes (they matter
for the Section 7 classification), and an explicit empty *language*
node is provided so derivatives have a bottom element.

All nodes are hashable and compare structurally; the module-level smart
constructors (:func:`union`, :func:`concat`, :func:`star`, ...) perform
light normalization (flattening, identity elements) which keeps
Brzozowski derivatives small.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator

#: The reserved text symbol (``S`` in the paper, ``#PCDATA`` in DTDs).
S_SYMBOL = "S"


class Regex:
    """Base class for content-model regular expressions."""

    __slots__ = ()

    def alphabet(self) -> frozenset[str]:
        """The set of symbols (element names / ``S``) occurring in the
        expression."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """Whether the empty word belongs to the language."""
        raise NotImplementedError

    def is_empty_language(self) -> bool:
        """Whether the language is empty (no word at all)."""
        return False

    def to_dtd(self) -> str:
        """Render in DTD content-model syntax."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.to_dtd()!r})"

    def __str__(self) -> str:
        return self.to_dtd()


@dataclass(frozen=True, slots=True)
class Epsilon(Regex):
    """The empty word (``EMPTY`` in DTD syntax)."""

    def alphabet(self) -> frozenset[str]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def to_dtd(self) -> str:
        return "EMPTY"


@dataclass(frozen=True, slots=True)
class EmptySet(Regex):
    """The empty language; used internally by derivatives."""

    def alphabet(self) -> frozenset[str]:
        return frozenset()

    def nullable(self) -> bool:
        return False

    def is_empty_language(self) -> bool:
        return True

    def to_dtd(self) -> str:
        return "<empty-language>"


@dataclass(frozen=True, slots=True)
class PCData(Regex):
    """``#PCDATA``: the single word consisting of the text symbol S."""

    def alphabet(self) -> frozenset[str]:
        return frozenset({S_SYMBOL})

    def nullable(self) -> bool:
        return False

    def to_dtd(self) -> str:
        return "(#PCDATA)"


@dataclass(frozen=True, slots=True)
class Sym(Regex):
    """A single element-type symbol."""

    name: str

    def alphabet(self) -> frozenset[str]:
        return frozenset({self.name})

    def nullable(self) -> bool:
        return False

    def to_dtd(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Union(Regex):
    """Alternation ``a | b``; ``parts`` has at least two members."""

    parts: tuple[Regex, ...]

    def alphabet(self) -> frozenset[str]:
        return frozenset().union(*(p.alphabet() for p in self.parts))

    def nullable(self) -> bool:
        return any(p.nullable() for p in self.parts)

    def to_dtd(self) -> str:
        return "(" + " | ".join(p.to_dtd() for p in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Concat(Regex):
    """Concatenation ``a, b``; ``parts`` has at least two members."""

    parts: tuple[Regex, ...]

    def alphabet(self) -> frozenset[str]:
        return frozenset().union(*(p.alphabet() for p in self.parts))

    def nullable(self) -> bool:
        return all(p.nullable() for p in self.parts)

    def to_dtd(self) -> str:
        return "(" + ", ".join(p.to_dtd() for p in self.parts) + ")"


@dataclass(frozen=True, slots=True)
class Star(Regex):
    """Kleene closure ``a*``."""

    inner: Regex

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def nullable(self) -> bool:
        return True

    def to_dtd(self) -> str:
        return _suffix(self.inner, "*")


@dataclass(frozen=True, slots=True)
class Plus(Regex):
    """One-or-more ``a+`` (kept as a node; semantically ``a, a*``)."""

    inner: Regex

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def nullable(self) -> bool:
        return self.inner.nullable()

    def to_dtd(self) -> str:
        return _suffix(self.inner, "+")


@dataclass(frozen=True, slots=True)
class Optional(Regex):
    """Zero-or-one ``a?`` (semantically ``a | epsilon``)."""

    inner: Regex

    def alphabet(self) -> frozenset[str]:
        return self.inner.alphabet()

    def nullable(self) -> bool:
        return True

    def to_dtd(self) -> str:
        return _suffix(self.inner, "?")


def _suffix(inner: Regex, op: str) -> str:
    body = inner.to_dtd()
    if isinstance(inner, (Sym, Union, Concat, PCData)):
        # Union/Concat/PCData already render parenthesized.
        if isinstance(inner, Sym):
            return body + op
        return body + op
    return "(" + body + ")" + op


EPSILON = Epsilon()
EMPTY_SET = EmptySet()
PCDATA = PCData()


def sym(name: str) -> Sym:
    """Build a symbol node."""
    return Sym(name)


def union(parts: Iterable[Regex]) -> Regex:
    """Smart union: flattens, drops empty languages, deduplicates."""
    flat: list[Regex] = []
    seen: set[Regex] = set()
    for part in _flatten(parts, Union):
        if part.is_empty_language() or part in seen:
            continue
        seen.add(part)
        flat.append(part)
    if not flat:
        return EMPTY_SET
    if len(flat) == 1:
        return flat[0]
    return Union(tuple(flat))


def concat(parts: Iterable[Regex]) -> Regex:
    """Smart concatenation: flattens, absorbs epsilon and empty set."""
    flat: list[Regex] = []
    for part in _flatten(parts, Concat):
        if part.is_empty_language():
            return EMPTY_SET
        if isinstance(part, Epsilon):
            continue
        flat.append(part)
    if not flat:
        return EPSILON
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def star(inner: Regex) -> Regex:
    """Smart Kleene star: ``(a*)* = a*``, ``eps* = eps``."""
    if isinstance(inner, (Epsilon, EmptySet)):
        return EPSILON
    if isinstance(inner, Star):
        return inner
    if isinstance(inner, (Plus, Optional)):
        return star(inner.inner)
    return Star(inner)


def plus(inner: Regex) -> Regex:
    """Smart one-or-more."""
    if isinstance(inner, (Epsilon, EmptySet)):
        return inner
    if isinstance(inner, (Star, Plus)):
        return inner
    if isinstance(inner, Optional):
        return star(inner.inner)
    return Plus(inner)


def optional(inner: Regex) -> Regex:
    """Smart zero-or-one."""
    if isinstance(inner, (Epsilon, Star, Optional)):
        return inner
    if isinstance(inner, EmptySet):
        return EPSILON
    if isinstance(inner, Plus):
        return star(inner.inner)
    return Optional(inner)


def _flatten(parts: Iterable[Regex], kind: type) -> Iterator[Regex]:
    for part in parts:
        if isinstance(part, kind):
            yield from part.parts  # type: ignore[attr-defined]
        else:
            yield part


@lru_cache(maxsize=8192)
def desugar(regex: Regex) -> Regex:
    """Rewrite ``a+`` and ``a?`` into the core Definition 1 grammar.

    Returns an equivalent expression using only epsilon, symbols, union,
    concatenation and star; useful when comparing against the paper's
    core fragment.
    """
    if isinstance(regex, (Epsilon, EmptySet, PCData, Sym)):
        return regex
    if isinstance(regex, Union):
        return union(desugar(p) for p in regex.parts)
    if isinstance(regex, Concat):
        return concat(desugar(p) for p in regex.parts)
    if isinstance(regex, Star):
        return star(desugar(regex.inner))
    if isinstance(regex, Plus):
        inner = desugar(regex.inner)
        return concat([inner, star(inner)])
    if isinstance(regex, Optional):
        return union([desugar(regex.inner), EPSILON])
    raise TypeError(f"unknown regex node: {regex!r}")
