"""The FD implication facade: ``(D, Σ) |- φ`` (Section 7).

Engine selection (``engine="auto"``):

* the **closure** engine runs first — it is sound for every DTD and
  complete for simple DTDs (Theorem 3's quadratic regime), so a
  ``True`` answer is always final and a ``False`` answer is final when
  the DTD is simple;
* otherwise the **chase** engine decides exactly, enumerating the
  DTD's disjunction choices (polynomial when ``N_D`` is logarithmic —
  Theorem 4 — and exponential in general, matching the
  coNP-completeness of Theorem 5);
* ``engine="closure" | "chase" | "brute"`` forces a specific engine.

:class:`ImplicationEngine` caches query results, which the XNF test and
the normalization algorithm exploit heavily.  The cache is keyed by the
canonical form of each single-RHS query (see :meth:`ImplicationEngine.
cache_key`) and instrumented: :meth:`ImplicationEngine.cache_info`
mirrors :func:`functools.lru_cache`, and when :mod:`repro.obs` is
enabled the engine emits ``implication.*`` counters (cache hits and
misses, engine chosen per decided query, closure→chase fallbacks).
"""

from __future__ import annotations

from typing import Iterable, Literal, NamedTuple

from repro.errors import UnsupportedFeatureError
from repro.dtd.classify import is_simple_dtd
from repro.dtd.model import DTD
from repro.fd.brute import brute_implies
from repro.fd.chase import chase_implies
from repro.fd.closure import closure_implies
from repro.fd.model import FD
from repro.obs import metrics as _obs

EngineName = Literal["auto", "closure", "chase", "brute"]

#: The cache key of one single-RHS query: ``(lhs, rhs)`` with the LHS
#: as a frozenset of paths and the RHS a single path.
CacheKey = tuple[frozenset, object]


class CacheInfo(NamedTuple):
    """Cache statistics, mirroring ``functools.lru_cache().cache_info()``.

    ``maxsize`` is always ``None``: the cache is unbounded (one entry
    per distinct single-RHS query against a fixed ``(D, Σ)``).
    """

    hits: int
    misses: int
    maxsize: None
    currsize: int


class ImplicationEngine:
    """A cached implication oracle for a fixed ``(D, Σ)``."""

    def __init__(self, dtd: DTD, sigma: Iterable[FD], *,
                 engine: EngineName = "auto") -> None:
        self.dtd = dtd
        self.sigma = [fd.validate(dtd) for fd in sigma]
        self.engine: EngineName = engine
        self._simple = is_simple_dtd(dtd)
        self._cache: dict[CacheKey, bool] = {}
        self._hits = 0
        self._misses = 0

    @staticmethod
    def cache_key(fd: FD) -> CacheKey:
        """The canonical cache key of a single-RHS query.

        A multi-RHS FD is decided RHS-by-RHS (the standard wlog
        reduction, :meth:`FD.expand`), so the canonical query form is
        the pair ``(lhs, rhs)``: the LHS is already an order-free
        ``frozenset`` of paths and the RHS a single path.  Two
        syntactically different spellings of the same query (path
        order, ``{}`` braces, duplicate paths) therefore hash to the
        same key, which is what makes the hit/miss metrics meaningful.
        """
        return (fd.lhs, fd.single_rhs)

    def implies(self, fd: FD) -> bool:
        """``(D, Σ) |- fd``."""
        result = True
        for single in fd.expand():
            # Inline cache_key: expand() guarantees a single-RHS FD.
            key = (single.lhs, next(iter(single.rhs)))
            cached = self._cache.get(key)
            if cached is None:
                self._misses += 1
                if _obs.enabled:
                    _obs.inc("implication.cache.miss")
                cached = self._decide(single)
                self._cache[key] = cached
            else:
                self._hits += 1
                if _obs.enabled:
                    _obs.inc("implication.cache.hit")
            result = result and cached
        return result

    def cache_info(self) -> CacheInfo:
        """Hit/miss/size statistics for the query cache."""
        return CacheInfo(self._hits, self._misses, None,
                         len(self._cache))

    def cache_clear(self) -> None:
        """Drop every cached answer and zero the statistics."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    def query_count(self) -> int:
        """Total single-RHS queries answered (cached or decided)."""
        return self._hits + self._misses

    def is_trivial(self, fd: FD) -> bool:
        """``(D, ∅) |- fd``: the FD holds in every conforming tree."""
        return implies(self.dtd, [], fd, engine=self.engine)

    def _decide(self, fd: FD) -> bool:
        if self.engine == "closure":
            if _obs.enabled:
                _obs.inc("implication.engine.closure")
            return closure_implies(self.dtd, self.sigma, fd)
        if self.engine == "chase":
            if _obs.enabled:
                _obs.inc("implication.engine.chase")
            return chase_implies(self.dtd, self.sigma, fd)
        if self.engine == "brute":
            if _obs.enabled:
                _obs.inc("implication.engine.brute")
            return brute_implies(self.dtd, self.sigma, fd)
        # auto: closure first (sound everywhere, complete for simple
        # DTDs), then the chase for the general case.
        if _obs.enabled:
            _obs.inc("implication.engine.closure")
        if closure_implies(self.dtd, self.sigma, fd):
            return True
        if self._simple:
            return False
        if self.dtd.is_recursive:
            raise UnsupportedFeatureError(
                "exact implication over recursive non-simple DTDs is not "
                "supported; force engine='closure' for a sound "
                "approximation")
        if _obs.enabled:
            _obs.inc("implication.fallback.closure_to_chase")
            _obs.inc("implication.engine.chase")
        return chase_implies(self.dtd, self.sigma, fd)


def implies(dtd: DTD, sigma: Iterable[FD], fd: FD, *,
            engine: EngineName = "auto") -> bool:
    """One-shot ``(D, Σ) |- fd``."""
    return ImplicationEngine(dtd, sigma, engine=engine).implies(fd)


def is_trivial(dtd: DTD, fd: FD, *, engine: EngineName = "auto") -> bool:
    """Whether ``fd`` is trivial: implied by the DTD alone."""
    return implies(dtd, [], fd, engine=engine)
