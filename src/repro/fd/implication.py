"""The FD implication facade: ``(D, Σ) |- φ`` (Section 7).

Engine selection (``engine="auto"``):

* the **closure** engine runs first — it is sound for every DTD and
  complete for simple DTDs (Theorem 3's quadratic regime), so a
  ``True`` answer is always final and a ``False`` answer is final when
  the DTD is simple;
* otherwise the **chase** engine decides exactly, enumerating the
  DTD's disjunction choices (polynomial when ``N_D`` is logarithmic —
  Theorem 4 — and exponential in general, matching the
  coNP-completeness of Theorem 5);
* ``engine="closure" | "chase" | "brute"`` forces a specific engine;
* ``engine="ensemble"`` runs the differential oracle
  (:mod:`repro.runtime.ensemble`): every applicable engine decides
  every query, verdicts are cross-checked, and contradictions are
  escalated instead of silently resolved.

:class:`ImplicationEngine` caches query results, which the XNF test and
the normalization algorithm exploit heavily.  The cache is keyed by the
canonical form of each single-RHS query (see :meth:`ImplicationEngine.
cache_key`) and instrumented: :meth:`ImplicationEngine.cache_info`
mirrors :func:`functools.lru_cache`, and when :mod:`repro.obs` is
enabled the engine emits ``implication.*`` counters (cache hits and
misses, engine chosen per decided query, closure→chase fallbacks).

**Resource governance** (see ``docs/ROBUSTNESS.md``): under an active
:mod:`repro.guard` budget the engines raise
:class:`~repro.errors.ResourceExhausted` instead of running unbounded.
:meth:`ImplicationEngine.implies` lets that propagate (a boolean API
cannot degrade); :meth:`ImplicationEngine.decide` walks the fallback
chain — the cache, then the always-sound closure, then (non-simple
DTDs) the budget-bounded chase — and converts exhaustion into a
three-valued :class:`ImplicationVerdict`: :data:`YES` / :data:`NO` /
:data:`UNKNOWN` with the tripped limit named.  The cache is keyed on
*completeness*: only fully decided answers are stored, so an
``UNKNOWN`` produced under a tight budget is never replayed as
authoritative by a later (or warmer) query.
"""

from __future__ import annotations

import weakref
from typing import Iterable, Literal, NamedTuple

from repro.errors import ResourceExhausted, UnsupportedFeatureError
from repro.dtd.classify import is_simple_dtd
from repro.dtd.model import DTD
from repro.fd.brute import brute_implies
from repro.fd.chase import chase_implies
from repro.fd.closure import closure_implies
from repro.fd.model import FD
from repro.obs import metrics as _obs

EngineName = Literal["auto", "closure", "chase", "brute", "ensemble"]

#: The three verdict values of :meth:`ImplicationEngine.decide`.
YES = "YES"
NO = "NO"
UNKNOWN = "UNKNOWN"


class ImplicationVerdict(NamedTuple):
    """A three-valued implication answer.

    ``value`` is :data:`YES`, :data:`NO`, or :data:`UNKNOWN`; both
    definite values are **sound** (backed by a completed engine run),
    while ``UNKNOWN`` is only ever produced when a resource limit
    actually tripped — ``limit`` then names it (``"deadline"``,
    ``"steps"``, ``"branches"``, or ``"nodes"``) and ``reason`` is a
    human-readable account.
    """

    value: str
    reason: str
    limit: str | None = None

    @property
    def decided(self) -> bool:
        """Whether the verdict is definite (``YES`` or ``NO``)."""
        return self.value != UNKNOWN

#: The cache key of one single-RHS query: ``(lhs, rhs)`` with the LHS
#: as a frozenset of paths and the RHS a single path.
CacheKey = tuple[frozenset, object]


class CacheInfo(NamedTuple):
    """Cache statistics, mirroring ``functools.lru_cache().cache_info()``.

    ``maxsize`` is always ``None``: the cache is unbounded (one entry
    per distinct single-RHS query against a fixed ``(D, Σ)``).
    """

    hits: int
    misses: int
    maxsize: None
    currsize: int


#: Every live engine, tracked weakly so :meth:`ImplicationEngine.
#: clear_all_caches` can reach instances held by long-lived owners
#: (``XMLSpec`` caches its oracle, benchmark closures capture theirs).
_live_engines: "weakref.WeakSet[ImplicationEngine]" = weakref.WeakSet()


class ImplicationEngine:
    """A cached implication oracle for a fixed ``(D, Σ)``."""

    def __init__(self, dtd: DTD, sigma: Iterable[FD], *,
                 engine: EngineName = "auto") -> None:
        self.dtd = dtd
        self.sigma = [fd.validate(dtd) for fd in sigma]
        self.engine: EngineName = engine
        self._simple = is_simple_dtd(dtd)
        self._cache: dict[CacheKey, bool] = {}
        self._hits = 0
        self._misses = 0
        _live_engines.add(self)

    @staticmethod
    def cache_key(fd: FD) -> CacheKey:
        """The canonical cache key of a single-RHS query.

        A multi-RHS FD is decided RHS-by-RHS (the standard wlog
        reduction, :meth:`FD.expand`), so the canonical query form is
        the pair ``(lhs, rhs)``: the LHS is already an order-free
        ``frozenset`` of paths and the RHS a single path.  Two
        syntactically different spellings of the same query (path
        order, ``{}`` braces, duplicate paths) therefore hash to the
        same key, which is what makes the hit/miss metrics meaningful.
        """
        return (fd.lhs, fd.single_rhs)

    def implies(self, fd: FD) -> bool:
        """``(D, Σ) |- fd``.

        Under an active :mod:`repro.guard` budget this may raise
        :class:`~repro.errors.ResourceExhausted`; use :meth:`decide`
        for the degrade-gracefully three-valued form.
        """
        result = True
        for single in fd.expand():
            result = self._lookup(single) and result
        return result

    def decide(self, fd: FD) -> ImplicationVerdict:
        """``(D, Σ) |- fd`` as a three-valued verdict.

        Walks the fallback chain per single-RHS query — cached answers,
        then the exact engines in :meth:`_decide`'s order (closure
        first: sound everywhere, complete for simple DTDs; then the
        budget-bounded chase for general DTDs) — and absorbs
        :class:`~repro.errors.ResourceExhausted` into an ``UNKNOWN``
        verdict naming the tripped limit.  A ``NO`` on any conjunct is
        final regardless of budget trips elsewhere (one unimplied RHS
        refutes the conjunction); otherwise any trip degrades the
        overall verdict to ``UNKNOWN``.  Budget-aborted queries are
        **not** cached, so a later call with more budget re-decides
        them from scratch.
        """
        unknown: ImplicationVerdict | None = None
        for single in fd.expand():
            try:
                value = self._lookup(single)
            except ResourceExhausted as error:
                if _obs.enabled:
                    _obs.inc("implication.verdict.unknown")
                if unknown is None:
                    unknown = ImplicationVerdict(
                        UNKNOWN, limit=error.limit,
                        reason=(f"undecided: {error} while deciding "
                                f"{single} (engine "
                                f"{error.partial.get('engine', '?')})"))
                continue
            if not value:
                if _obs.enabled:
                    _obs.inc("implication.verdict.no")
                return ImplicationVerdict(
                    NO, reason=f"{single} is not implied")
        if unknown is not None:
            return unknown
        if _obs.enabled:
            _obs.inc("implication.verdict.yes")
        return ImplicationVerdict(YES, reason="implied")

    def _lookup(self, single: FD) -> bool:
        """Decide one single-RHS query through the cache.

        Only *complete* answers are ever stored: :meth:`_decide`
        signals an aborted run by raising (``ResourceExhausted``
        propagates before the assignment below), so the cache never
        holds a verdict produced under an exhausted budget.
        """
        # Inline cache_key: expand() guarantees a single-RHS FD.
        key = (single.lhs, next(iter(single.rhs)))
        cached = self._cache.get(key)
        if cached is None:
            self._misses += 1
            if _obs.enabled:
                _obs.inc("implication.cache.miss")
            cached = self._decide(single)
            self._cache[key] = cached
        else:
            self._hits += 1
            if _obs.enabled:
                _obs.inc("implication.cache.hit")
        return cached

    def cache_info(self) -> CacheInfo:
        """Hit/miss/size statistics for the query cache."""
        return CacheInfo(self._hits, self._misses, None,
                         len(self._cache))

    def cache_clear(self) -> None:
        """Drop every cached answer and zero the statistics."""
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    @classmethod
    def clear_all_caches(cls) -> int:
        """:meth:`cache_clear` on every live engine; returns how many
        engines were cleared.

        This is the benchmark runner's isolation hook
        (:func:`repro.bench.runner.isolate`): a workload that re-uses a
        spec (whose oracle is cached on the instance) must start every
        run cold, or the first run's counters would differ from every
        later one.
        """
        engines = list(_live_engines)
        for engine in engines:
            engine.cache_clear()
        return len(engines)

    def query_count(self) -> int:
        """Total single-RHS queries answered (cached or decided)."""
        return self._hits + self._misses

    def is_trivial(self, fd: FD) -> bool:
        """``(D, ∅) |- fd``: the FD holds in every conforming tree."""
        return implies(self.dtd, [], fd, engine=self.engine)

    def _decide(self, fd: FD) -> bool:
        if self.engine == "closure":
            if _obs.enabled:
                _obs.inc("implication.engine.closure")
            return closure_implies(self.dtd, self.sigma, fd)
        if self.engine == "chase":
            if _obs.enabled:
                _obs.inc("implication.engine.chase")
            return chase_implies(self.dtd, self.sigma, fd)
        if self.engine == "brute":
            if _obs.enabled:
                _obs.inc("implication.engine.brute")
            return brute_implies(self.dtd, self.sigma, fd)
        if self.engine == "ensemble":
            # Imported lazily: repro.runtime.ensemble imports the
            # individual engines, not this facade, so there is no
            # cycle — but the runtime package should stay optional
            # for plain implication users.
            from repro.runtime.ensemble import differential_implies
            if _obs.enabled:
                _obs.inc("implication.engine.ensemble")
            return differential_implies(self.dtd, self.sigma, fd,
                                        simple=self._simple)
        # auto: closure first (sound everywhere, complete for simple
        # DTDs), then the chase for the general case.
        if _obs.enabled:
            _obs.inc("implication.engine.closure")
        if closure_implies(self.dtd, self.sigma, fd):
            return True
        if self._simple:
            return False
        if self.dtd.is_recursive:
            raise UnsupportedFeatureError(
                "exact implication over recursive non-simple DTDs is not "
                "supported; force engine='closure' for a sound "
                "approximation")
        if _obs.enabled:
            _obs.inc("implication.fallback.closure_to_chase")
            _obs.inc("implication.engine.chase")
        return chase_implies(self.dtd, self.sigma, fd)


def implies(dtd: DTD, sigma: Iterable[FD], fd: FD, *,
            engine: EngineName = "auto") -> bool:
    """One-shot ``(D, Σ) |- fd``."""
    return ImplicationEngine(dtd, sigma, engine=engine).implies(fd)


def decide(dtd: DTD, sigma: Iterable[FD], fd: FD, *,
           engine: EngineName = "auto") -> ImplicationVerdict:
    """One-shot three-valued ``(D, Σ) |- fd`` (budget-aware)."""
    return ImplicationEngine(dtd, sigma, engine=engine).decide(fd)


def is_trivial(dtd: DTD, fd: FD, *, engine: EngineName = "auto") -> bool:
    """Whether ``fd`` is trivial: implied by the DTD alone."""
    return implies(dtd, [], fd, engine=engine)
