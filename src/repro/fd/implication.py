"""The FD implication facade: ``(D, Σ) |- φ`` (Section 7).

Engine selection (``engine="auto"``):

* the **closure** engine runs first — it is sound for every DTD and
  complete for simple DTDs (Theorem 3's quadratic regime), so a
  ``True`` answer is always final and a ``False`` answer is final when
  the DTD is simple;
* otherwise the **chase** engine decides exactly, enumerating the
  DTD's disjunction choices (polynomial when ``N_D`` is logarithmic —
  Theorem 4 — and exponential in general, matching the
  coNP-completeness of Theorem 5);
* ``engine="closure" | "chase" | "brute"`` forces a specific engine.

:class:`ImplicationEngine` caches query results, which the XNF test and
the normalization algorithm exploit heavily.
"""

from __future__ import annotations

from typing import Iterable, Literal

from repro.errors import UnsupportedFeatureError
from repro.dtd.classify import is_simple_dtd
from repro.dtd.model import DTD
from repro.fd.brute import brute_implies
from repro.fd.chase import chase_implies
from repro.fd.closure import closure_implies
from repro.fd.model import FD

EngineName = Literal["auto", "closure", "chase", "brute"]


class ImplicationEngine:
    """A cached implication oracle for a fixed ``(D, Σ)``."""

    def __init__(self, dtd: DTD, sigma: Iterable[FD], *,
                 engine: EngineName = "auto") -> None:
        self.dtd = dtd
        self.sigma = [fd.validate(dtd) for fd in sigma]
        self.engine: EngineName = engine
        self._simple = is_simple_dtd(dtd)
        self._cache: dict[FD, bool] = {}

    def implies(self, fd: FD) -> bool:
        """``(D, Σ) |- fd``."""
        result = True
        for single in fd.expand():
            cached = self._cache.get(single)
            if cached is None:
                cached = self._decide(single)
                self._cache[single] = cached
            result = result and cached
        return result

    def is_trivial(self, fd: FD) -> bool:
        """``(D, ∅) |- fd``: the FD holds in every conforming tree."""
        return implies(self.dtd, [], fd, engine=self.engine)

    def _decide(self, fd: FD) -> bool:
        if self.engine == "closure":
            return closure_implies(self.dtd, self.sigma, fd)
        if self.engine == "chase":
            return chase_implies(self.dtd, self.sigma, fd)
        if self.engine == "brute":
            return brute_implies(self.dtd, self.sigma, fd)
        # auto: closure first (sound everywhere, complete for simple
        # DTDs), then the chase for the general case.
        if closure_implies(self.dtd, self.sigma, fd):
            return True
        if self._simple:
            return False
        if self.dtd.is_recursive:
            raise UnsupportedFeatureError(
                "exact implication over recursive non-simple DTDs is not "
                "supported; force engine='closure' for a sound "
                "approximation")
        return chase_implies(self.dtd, self.sigma, fd)


def implies(dtd: DTD, sigma: Iterable[FD], fd: FD, *,
            engine: EngineName = "auto") -> bool:
    """One-shot ``(D, Σ) |- fd``."""
    return ImplicationEngine(dtd, sigma, engine=engine).implies(fd)


def is_trivial(dtd: DTD, fd: FD, *, engine: EngineName = "auto") -> bool:
    """Whether ``fd`` is trivial: implied by the DTD alone."""
    return implies(dtd, [], fd, engine=engine)
