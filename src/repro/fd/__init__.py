"""XML functional dependencies — Section 4 of the paper.

An FD over a DTD ``D`` is ``S1 -> S2`` with ``S1, S2`` finite non-empty
sets of paths of ``D``.  A tree ``T < D`` satisfies it when every two
maximal tree tuples that agree (non-null) on ``S1`` agree on ``S2`` —
the standard semantics of FDs over relations with nulls.

Public surface:

* :class:`FD` and :func:`FD.parse` — the dependency and its textual
  syntax (``courses.course.@cno -> courses.course``);
* :func:`satisfies` — ``T |= S1 -> S2``;
* :func:`implies` / :class:`ImplicationEngine` — the implication
  problem ``(D, Σ) |- φ`` with three engines: ``closure`` (the
  quadratic algorithm of Theorem 3 for simple DTDs), ``chase`` (general
  non-recursive DTDs; worst-case exponential, matching Theorem 5), and
  ``brute`` (exhaustive bounded model search, the test oracle);
* :func:`is_trivial` — ``(D, ∅) |- φ``.
"""

from repro.fd.model import FD, parse_fds
from repro.fd.satisfaction import satisfies, satisfies_all, violating_pairs
from repro.fd.implication import ImplicationEngine, implies, is_trivial

__all__ = [
    "FD", "parse_fds", "satisfies", "satisfies_all", "violating_pairs",
    "implies", "is_trivial", "ImplicationEngine",
]
