"""The chase-based FD implication engine (general non-recursive DTDs).

To decide ``(D, Σ) |- S -> q`` we search for a countermodel: a tree
``T |= D`` satisfying Σ with two maximal tuples that agree (non-null)
on ``S`` but differ on ``q``.  The search space is organized as a
*tableau chase*:

1. **Skeleton** — the most general candidate: two tuples ``t1, t2``
   materialized over the prefix-closure of ``S ∪ {q}``, sharing exactly
   the nodes that any agreeing pair must share (the root, the element
   paths of ``S`` with their ancestors, and their ``1``/``?``-children,
   transitively); all other values are fresh distinct symbols, except
   the ``S``-values, which are shared.  Minimal presence and minimal
   sharing are optimal: extra nodes or equalities can only trigger more
   Σ-constraints and never enable new countermodels.

2. **Completion** — each node is repaired to conform to its production
   (missing required attributes, text, and a *minimal* multiset of
   missing children).  Where several minimal completions exist — i.e.
   where the DTD has unrestricted disjunction — the search forks; this
   is exactly the ``N_D`` factor of Theorems 4/5, and the reason the
   engine is worst-case exponential while staying polynomial when
   ``N_D`` is logarithmic.

3. **Chase** — while some pair of maximal tuples violates an FD of Σ,
   the offending values are unified: string symbols are equated; nodes
   are merged (cascading upward to keep a tree and sideways over
   children with at-most-one multiplicity).  A branch whose node counts
   can no longer satisfy a production is contradictory and dropped.

4. **Verification** — a finished branch is model-checked: if it
   conforms (unordered), satisfies Σ and violates the query, it *is* a
   countermodel and the answer is "not implied".  If every branch fails,
   the FD is implied (the chased tableau is universal among candidate
   countermodels).

The engine requires a non-recursive DTD.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Iterable, Iterator

from repro.errors import RecursionLimitError, ReproError, ResourceExhausted
from repro.dtd.model import DTD
from repro.dtd.paths import TEXT_STEP, Path
from repro.faults import plan as _faults
from repro.fd.model import FD
from repro.guard import budget as _guard
from repro.obs import metrics as _obs
from repro.fd.satisfaction import satisfies, satisfies_all, violating_pairs
from repro.regex.ast import PCData, Regex
from repro.regex.matching import matches_multiset
from repro.tuples.extract import tuples_of
from repro.xmltree.conformance import conforms_unordered
from repro.xmltree.model import XMLTree

#: Hard caps keeping pathological inputs from running away.
MAX_BRANCHES = 4096
MAX_CHASE_STEPS = 20000
MAX_COMPLETION_EXTRA = 6

_SITE_BRANCH = _faults.register_site(
    "fd.chase.branch", "fd",
    "each tableau branch popped from the chase worklist")
_SITE_STEP = _faults.register_site(
    "fd.chase.step", "fd",
    "each repair/violation pass of the per-branch chase loop")


class _Contradiction(Exception):
    """This tableau branch cannot be repaired into a conforming tree."""


def chase_implies(dtd: DTD, sigma: Iterable[FD], fd: FD, *,
                  max_branches: int = MAX_BRANCHES) -> bool:
    """Decide ``(D, Σ) |- fd`` (single- or multi-RHS)."""
    if dtd.is_recursive:
        raise RecursionLimitError(
            "the chase engine requires a non-recursive DTD")
    sigma = list(sigma)
    with _obs.timer("chase.implies"):
        return all(
            _implies_single(dtd, sigma, FD(fd.lhs, frozenset({rhs})),
                            max_branches=max_branches)
            for rhs in fd.rhs)


def _implies_single(dtd: DTD, sigma: list[FD], fd: FD, *,
                    max_branches: int) -> bool:
    rhs = fd.single_rhs
    if rhs in fd.lhs:
        return True
    skeleton = _Skeleton(dtd, fd)
    if skeleton.structurally_implied:
        return True
    budget = _guard.current() if _guard.active else None
    pending = [skeleton.build()]
    explored = 0
    try:
        while pending:
            explored += 1
            if explored > max_branches:
                raise ReproError(
                    f"chase exceeded {max_branches} disjunction branches; "
                    "the DTD's N_D is too large for exact implication")
            if budget is not None:
                budget.tick_branches()
            if _faults.active:
                _faults.fire(_SITE_BRANCH)
            if _obs.enabled:
                _obs.inc("chase.branches.explored")
            tableau = pending.pop()
            try:
                forks = _chase_branch(dtd, sigma, tableau, budget)
            except _Contradiction:
                if _obs.enabled:
                    _obs.inc("chase.branches.pruned")
                continue
            if forks is not None:
                if _obs.enabled:
                    _obs.inc("chase.branches.forked", len(forks))
                pending.extend(forks)
                continue
            if _obs.enabled:
                _obs.observe("chase.tableau.nodes", len(tableau.labels))
            tree = tableau.to_tree()
            if (conforms_unordered(tree, dtd)
                    and satisfies_all(tree, dtd, sigma)
                    and not satisfies(tree, dtd, fd)):
                if _obs.enabled:
                    _obs.inc("chase.countermodels")
                return False  # verified countermodel
    except ResourceExhausted as error:
        error.partial.setdefault("engine", "chase")
        error.partial.setdefault("query", str(fd))
        error.partial.setdefault("branches_explored", explored)
        error.partial.setdefault("branches_pending", len(pending))
        raise
    return True


# ---------------------------------------------------------------------------
# Tableau
# ---------------------------------------------------------------------------

class _Tableau:
    """A mutable candidate countermodel with symbolic values."""

    def __init__(self, dtd: DTD) -> None:
        self.dtd = dtd
        self.labels: dict[str, str] = {}
        self.parents: dict[str, str | None] = {}
        self.children: dict[str, list[str]] = {}
        self.attrs: dict[tuple[str, str], str] = {}
        self.text: dict[str, str] = {}
        self.root: str | None = None
        self._node_counter = 0
        self._symbol_counter = 0

    # -- construction -------------------------------------------------------

    def fresh_symbol(self) -> str:
        symbol = f"${self._symbol_counter}"
        self._symbol_counter += 1
        return symbol

    def add_node(self, label: str, parent: str | None) -> str:
        node = f"n{self._node_counter}"
        self._node_counter += 1
        self.labels[node] = label
        self.parents[node] = parent
        self.children[node] = []
        if parent is None:
            if self.root is not None:
                raise AssertionError("tableau already has a root")
            self.root = node
        else:
            self.children[parent].append(node)
        return node

    def clone(self) -> "_Tableau":
        duplicate = _Tableau(self.dtd)
        duplicate.labels = dict(self.labels)
        duplicate.parents = dict(self.parents)
        duplicate.children = {n: list(c) for n, c in self.children.items()}
        duplicate.attrs = dict(self.attrs)
        duplicate.text = dict(self.text)
        duplicate.root = self.root
        duplicate._node_counter = self._node_counter
        duplicate._symbol_counter = self._symbol_counter
        if hasattr(self, "_forwards"):
            duplicate._forwards = dict(self._forwards)
        return duplicate

    # -- value unification ----------------------------------------------------

    def unify_symbols(self, first: str, second: str) -> None:
        """Equate two string symbols (global substitution)."""
        if first == second:
            return
        keep, drop = sorted([first, second])
        for key, value in list(self.attrs.items()):
            if value == drop:
                self.attrs[key] = keep
        for node, value in list(self.text.items()):
            if value == drop:
                self.text[node] = keep

    # -- node merging -----------------------------------------------------------

    def merge_nodes(self, first: str, second: str) -> None:
        """Merge two nodes (which always sit at the same DTD path, hence
        share a label), cascading upward so the result stays a tree and
        sideways over at-most-one children."""
        first = self._resolve(first)
        second = self._resolve(second)
        if first == second:
            return
        parent1 = self.parents[first]
        parent2 = self.parents[second]
        if parent1 != parent2:
            assert parent1 is not None and parent2 is not None
            self.merge_nodes(parent1, parent2)
            first = self._resolve(first)
            second = self._resolve(second)
            if first == second:
                return
        self._absorb(first, second)

    def _resolve(self, node: str) -> str:
        # Nodes removed by merging are redirected via _forwards.
        forwards = getattr(self, "_forwards", None)
        if forwards is None:
            return node
        while node in forwards:
            node = forwards[node]
        return node

    def _absorb(self, keep: str, drop: str) -> None:
        if not hasattr(self, "_forwards"):
            self._forwards: dict[str, str] = {}
        parent = self.parents[drop]
        if parent is not None:
            siblings = self.children[parent]
            self.children[parent] = [c for c in siblings if c != drop]
        for child in self.children.pop(drop, []):
            self.parents[child] = keep
            self.children[keep].append(child)
        for (node, attr), value in list(self.attrs.items()):
            if node == drop:
                del self.attrs[(node, attr)]
                existing = self.attrs.get((keep, attr))
                if existing is None:
                    self.attrs[(keep, attr)] = value
                elif existing != value:
                    self.unify_symbols(existing, value)
        if drop in self.text:
            value = self.text.pop(drop)
            existing = self.text.get(keep)
            if existing is None:
                self.text[keep] = value
            elif existing != value:
                self.unify_symbols(existing, value)
        del self.labels[drop]
        del self.parents[drop]
        self._forwards[drop] = keep
        # Sideways cascade: children with at-most-one multiplicity must
        # collapse; impossible counts are a contradiction.
        self._collapse_children(keep)

    def _collapse_children(self, node: str) -> None:
        label = self.labels[node]
        by_label: dict[str, list[str]] = {}
        for child in self.children[node]:
            by_label.setdefault(self.labels[child], []).append(child)
        for child_label, members in by_label.items():
            if len(members) < 2:
                continue
            multiplicity = self.dtd.child_multiplicity(label, child_label)
            if multiplicity.at_most_one:
                survivor = members[0]
                for other in members[1:]:
                    self._absorb(survivor, self._resolve(other))
                    survivor = self._resolve(survivor)
            else:
                from repro.regex.analysis import occurrence_bounds
                _low, high = occurrence_bounds(
                    self.dtd.content(label), child_label)
                if len(members) > high:
                    raise _Contradiction

    # -- export ---------------------------------------------------------------

    def to_tree(self) -> XMLTree:
        tree = XMLTree()
        assert self.root is not None

        def build(node: str, parent: str | None) -> None:
            tree.add_node(self.labels[node], node_id=node, parent=parent,
                          attrs={attr: value
                                 for (owner, attr), value in self.attrs.items()
                                 if owner == node},
                          text=self.text.get(node))
            for child in self.children[node]:
                build(child, node)

        build(self.root, None)
        return tree.freeze()


# ---------------------------------------------------------------------------
# Skeleton construction
# ---------------------------------------------------------------------------

class _Skeleton:
    """Builds the initial two-tuple tableau for a query FD."""

    def __init__(self, dtd: DTD, fd: FD) -> None:
        self.dtd = dtd
        self.fd = fd
        self.rhs = fd.single_rhs
        self.present = self._present_paths()
        self.shared = self._shared_paths()
        self.structurally_implied = self._structurally_implied()

    def _present_paths(self) -> set[Path]:
        present: set[Path] = set()
        for path in self.fd.lhs | {self.rhs}:
            present.update(path.prefixes())
        return present

    def _shared_paths(self) -> set[Path]:
        shared: set[Path] = {Path.root(self.dtd.root)}
        for path in self.fd.lhs:
            if path.is_element:
                shared.update(path.prefixes())
        changed = True
        while changed:
            changed = False
            for path in self.present:
                if path.length == 1 or not path.is_element:
                    continue
                if path in shared or path.parent not in shared:
                    continue
                multiplicity = self.dtd.child_multiplicity(
                    path.parent.last, path.last)
                if multiplicity.at_most_one:
                    shared.add(path)
                    changed = True
        return shared

    def _structurally_implied(self) -> bool:
        if self.rhs.is_element:
            return self.rhs in self.shared
        return self.rhs.element_prefix in self.shared

    def build(self) -> _Tableau:
        tableau = _Tableau(self.dtd)
        sides: dict[Path, list[str]] = {}
        for path in sorted((p for p in self.present if p.is_element),
                           key=lambda p: p.length):
            if path.length == 1:
                node = tableau.add_node(path.last, None)
                sides[path] = [node, node]
                continue
            parents = sides[path.parent]
            if path in self.shared:
                node = tableau.add_node(path.last, parents[0])
                sides[path] = [node, node]
            elif parents[0] == parents[1]:
                sides[path] = [tableau.add_node(path.last, parents[0]),
                               tableau.add_node(path.last, parents[0])]
            else:
                sides[path] = [tableau.add_node(path.last, parents[0]),
                               tableau.add_node(path.last, parents[1])]
        # LHS attribute/text values are shared symbols; everything else
        # (in particular the RHS) gets distinct fresh symbols during
        # completion, which keeps the tableau maximally general.
        for path in self.fd.lhs:
            if path.is_element:
                continue
            owners = sides[path.parent]
            symbol = tableau.fresh_symbol()
            for owner in owners:
                if path.is_attribute:
                    tableau.attrs[(owner, path.last)] = symbol
                else:
                    tableau.text[owner] = symbol
        return tableau


# ---------------------------------------------------------------------------
# Chase loop
# ---------------------------------------------------------------------------

def _chase_branch(dtd: DTD, sigma: list[FD], tableau: _Tableau,
                  budget: "_guard.Budget | None" = None,
                  ) -> list[_Tableau] | None:
    """Run one branch to fixpoint.

    Returns ``None`` when the branch reached a fixpoint (caller then
    verifies it), or a list of forked tableaux when a completion had
    several minimal options.  Raises :class:`_Contradiction` if the
    branch is unsatisfiable, :class:`ResourceExhausted` if ``budget``
    trips mid-branch.
    """
    for _step in range(MAX_CHASE_STEPS):
        if budget is not None:
            budget.tick_steps()
        if _faults.active:
            _faults.fire(_SITE_STEP)
        forks = _repair(dtd, tableau, budget)
        if forks is not None:
            return forks
        violation = _find_violation(dtd, sigma, tableau)
        if violation is None:
            return None
        if _obs.enabled:
            _obs.inc("chase.steps")
        _fix_violation(dtd, tableau, *violation)
    raise ReproError("chase did not terminate within the step budget")


def _repair(dtd: DTD, tableau: _Tableau,
            budget: "_guard.Budget | None" = None,
            ) -> list[_Tableau] | None:
    """Repair attributes, text and child multisets node by node.

    Deterministic repairs are applied in place; the first node with
    several minimal child completions forks the tableau.
    """
    progress = True
    while progress:
        progress = False
        for node in list(tableau.labels):
            if node not in tableau.labels:
                continue  # merged away
            label = tableau.labels[node]
            for attr in dtd.attrs(label):
                if (node, attr) not in tableau.attrs:
                    tableau.attrs[(node, attr)] = tableau.fresh_symbol()
                    progress = True
            production = dtd.content(label)
            if isinstance(production, PCData):
                if node not in tableau.text:
                    tableau.text[node] = tableau.fresh_symbol()
                    progress = True
                continue
            counts = Counter(
                tableau.labels[child] for child in tableau.children[node])
            if matches_multiset(production, counts):
                continue
            completions = _minimal_completions(production, counts)
            if not completions:
                raise _Contradiction
            if len(completions) == 1:
                _apply_completion(dtd, tableau, node, completions[0],
                                  budget)
                progress = True
                continue
            forks = []
            for completion in completions:
                fork = tableau.clone()
                _apply_completion(dtd, fork, node, completion, budget)
                forks.append(fork)
            return forks
    return None


def _minimal_completions(production: Regex,
                         counts: Counter) -> list[Counter]:
    """The minimal addition multisets making the children match the
    production up to permutation — the ⊆-antichain of matching
    additions.  (Incomparable minima of different sizes both matter:
    for ``(a | (b, c))`` and no children, both ``{a}`` and ``{b, c}``
    are minimal branch choices.)

    Concatenations over pairwise-disjoint alphabets — the disjunctive
    productions of Section 7 — are completed factor by factor and the
    per-factor options cross-combined, which keeps the ``2^m`` branch
    structure of ``m`` disjunctions without an exponential scan of the
    whole alphabet.
    """
    from repro.regex.ast import Concat

    if isinstance(production, Concat):
        alphabets = [part.alphabet() for part in production.parts]
        disjoint = all(
            not (alphabets[i] & alphabets[j])
            for i in range(len(alphabets))
            for j in range(i + 1, len(alphabets)))
        if disjoint:
            per_factor: list[list[Counter]] = []
            for part, alphabet in zip(production.parts, alphabets):
                part_counts = Counter(
                    {s: c for s, c in counts.items() if s in alphabet})
                if matches_multiset(part, part_counts):
                    options = [Counter()]
                else:
                    options = _enumerate_completions(part, part_counts)
                if not options:
                    return []
                per_factor.append(options)
            combined: list[Counter] = []
            for combo in itertools.product(*per_factor):
                total = Counter()
                for piece in combo:
                    total += piece
                combined.append(total)
            # Factor-wise minimality gives global minimality for
            # disjoint alphabets; still drop exact duplicates.
            unique: list[Counter] = []
            for addition in combined:
                if addition not in unique and addition:
                    unique.append(addition)
            return unique
    return _enumerate_completions(production, counts)


def _enumerate_completions(production: Regex,
                           counts: Counter) -> list[Counter]:
    """Exhaustive antichain search (used per factor / as fallback)."""
    from repro.regex.analysis import occurrence_bounds

    alphabet = sorted(production.alphabet())
    deficit = sum(
        max(0, occurrence_bounds(production, symbol)[0] - counts[symbol])
        for symbol in alphabet)
    bound = deficit + MAX_COMPLETION_EXTRA
    matching: list[Counter] = []
    for total in range(1, bound + 1):
        for combo in itertools.combinations_with_replacement(alphabet, total):
            addition = Counter(combo)
            # Skip supersets of an already-found match (smaller totals
            # were enumerated first, so this keeps only the antichain).
            if any(not (found - addition) for found in matching):
                continue
            if matches_multiset(production, counts + addition):
                matching.append(addition)
    return matching


def _apply_completion(dtd: DTD, tableau: _Tableau, node: str,
                      addition: Counter,
                      budget: "_guard.Budget | None" = None) -> None:
    if budget is not None:
        budget.tick_nodes(sum(addition.values()))
    for label, count in addition.items():
        for _ in range(count):
            tableau.add_node(label, node)


def _find_violation(dtd: DTD, sigma: list[FD], tableau: _Tableau):
    tree = tableau.to_tree()
    tuples = tuples_of(tree, dtd, check_compatible=False)
    for fd in sigma:
        pairs = violating_pairs(tree, dtd, fd, tuples=tuples, limit=1)
        if pairs:
            return (fd, pairs[0][0], pairs[0][1])
    return None


def _fix_violation(dtd: DTD, tableau: _Tableau, fd: FD, t1, t2) -> None:
    """Apply one chase step for the first disagreeing RHS path.

    Only one repair is applied per call: merges and unifications can
    invalidate the values cached in ``t1``/``t2``, so the caller's
    fixpoint loop re-extracts tuples before the next step.
    """
    for path in sorted(fd.rhs, key=str):
        v1 = t1.get(path)
        v2 = t2.get(path)
        if v1 == v2:
            continue
        if v1 is not None and v2 is not None:
            if path.is_element:
                tableau.merge_nodes(v1, v2)
            else:
                tableau.unify_symbols(v1, v2)
            return
        # Exactly one side is null: the branches must join.  Merge at
        # the deepest element prefix where both tuples are non-null but
        # assign different nodes.
        join: tuple[str, str] | None = None
        for prefix in path.element_prefix.prefixes():
            a, b = t1.get(prefix), t2.get(prefix)
            if a is not None and b is not None and a != b:
                join = (a, b)
        # join cannot be None: if every common prefix were shared, tuple
        # maximality would have extended the null side to the child that
        # the non-null side sees under the same node.
        assert join is not None, "null-vs-node violation with shared spine"
        tableau.merge_nodes(*join)
        return
    raise AssertionError("violating pair without a disagreeing RHS path")
