"""Exhaustive bounded model search — the test oracle for implication.

Enumerates every tree conforming to a (non-recursive) DTD whose child
words stay within a length bound and whose attribute/text values come
from a small fixed domain, then checks ``T |= Σ`` and ``T |= φ``
directly.  A countermodel found this way *refutes* implication
definitively; exhausting the bounded space without one supports (but,
being bounded, does not prove) implication.

This engine exists to cross-validate the closure and chase engines on
small random instances (see ``tests/property/test_implication_agree``);
it is intentionally simple rather than fast.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, Sequence

from repro.errors import RecursionLimitError, ResourceExhausted
from repro.dtd.model import DTD
from repro.fd.model import FD
from repro.fd.satisfaction import satisfies, satisfies_all
from repro.guard import budget as _guard
from repro.regex.ast import EMPTY_SET, PCData, Regex
from repro.regex.matching import derivative
from repro.xmltree.model import XMLTree

DEFAULT_DOMAIN = ("0", "1", "2")
DEFAULT_MAX_WORD = 3


def bounded_words(production: Regex, max_length: int) -> Iterator[list[str]]:
    """All words of ``L(production)`` of length at most ``max_length``."""
    frontier: list[tuple[Regex, list[str]]] = [(production, [])]
    while frontier:
        state, word = frontier.pop()
        if state.nullable():
            yield word
        if len(word) >= max_length:
            continue
        for symbol in sorted(state.alphabet()):
            next_state = derivative(state, symbol)
            if next_state is not EMPTY_SET:
                frontier.append((next_state, word + [symbol]))


def enumerate_trees(dtd: DTD, *, domain: Sequence[str] = DEFAULT_DOMAIN,
                    max_word: int = DEFAULT_MAX_WORD,
                    max_trees: int | None = None,
                    max_variants: int = 100_000) -> Iterator[XMLTree]:
    """All conforming trees within the bounds (lazily).

    ``max_word`` bounds each node's number of children; ``domain`` is
    the value universe for attributes and text.  Subtree variants are
    memoized per element type and capped at ``max_variants`` (the space
    is a nested product and explodes quickly on deep schemas — the
    engine is an oracle for *small* DTDs); the root level is generated
    lazily so ``max_trees`` keeps memory bounded.
    """
    if dtd.is_recursive:
        raise RecursionLimitError(
            "bounded enumeration requires a non-recursive DTD")

    from repro.errors import ReproError

    budget = _guard.current() if _guard.active else None
    memo: dict[str, list] = {}

    def attr_choices_of(element: str) -> list[dict]:
        attr_names = sorted(dtd.attrs(element))
        return [
            dict(zip(attr_names, values))
            for values in itertools.product(domain, repeat=len(attr_names))
        ]

    def subtree_variants(element: str) -> list:
        """Nested (label, attrs, children-or-text) variants (memoized)."""
        cached = memo.get(element)
        if cached is not None:
            return cached
        production = dtd.content(element)
        bodies: list = []
        if isinstance(production, PCData):
            bodies = [("text", value) for value in domain]
        else:
            for word in bounded_words(production, max_word):
                child_variant_lists = [subtree_variants(c) for c in word]
                for combo in itertools.product(*child_variant_lists):
                    if budget is not None:
                        budget.tick_nodes()
                    bodies.append(("children", list(combo)))
                    if len(bodies) > max_variants:
                        raise ReproError(
                            f"bounded enumeration exceeds {max_variants} "
                            f"variants at element {element!r}; shrink "
                            "max_word/domain — the brute engine targets "
                            "small DTDs")
        variants = [(element, attrs, body)
                    for attrs in attr_choices_of(element)
                    for body in bodies]
        if len(variants) > max_variants:
            raise ReproError(
                f"bounded enumeration exceeds {max_variants} variants "
                f"at element {element!r}; shrink max_word/domain — the "
                "brute engine targets small DTDs")
        memo[element] = variants
        return variants

    def root_variants() -> Iterator:
        """The root level lazily: memory stays bounded by max_trees."""
        production = dtd.content(dtd.root)
        attr_choices = attr_choices_of(dtd.root)
        if isinstance(production, PCData):
            for attrs in attr_choices:
                for value in domain:
                    yield (dtd.root, attrs, ("text", value))
            return
        for word in bounded_words(production, max_word):
            child_variant_lists = [subtree_variants(c) for c in word]
            for combo in itertools.product(*child_variant_lists):
                for attrs in attr_choices:
                    yield (dtd.root, attrs, ("children", list(combo)))

    def materialize(variant) -> XMLTree:
        tree = XMLTree()

        def build(item, parent: str | None) -> None:
            label, attrs, body = item
            kind, payload = body
            node = tree.add_node(
                label, parent=parent, attrs=attrs,
                text=payload if kind == "text" else None)
            if kind == "children":
                for child in payload:
                    build(child, node)

        build(variant, None)
        return tree.freeze()

    produced = 0
    try:
        for variant in root_variants():
            if budget is not None:
                budget.tick_steps()
            yield materialize(variant)
            produced += 1
            if max_trees is not None and produced >= max_trees:
                return
    except ResourceExhausted as error:
        error.partial.setdefault("engine", "brute")
        error.partial.setdefault("trees_enumerated", produced)
        raise


def find_countermodel(dtd: DTD, sigma: Iterable[FD], fd: FD, *,
                      domain: Sequence[str] = DEFAULT_DOMAIN,
                      max_word: int = DEFAULT_MAX_WORD,
                      max_trees: int | None = 200_000,
                      ) -> XMLTree | None:
    """A bounded-space countermodel to ``(D, Σ) |- fd``, if any."""
    sigma = list(sigma)
    for tree in enumerate_trees(dtd, domain=domain, max_word=max_word,
                                max_trees=max_trees):
        if satisfies_all(tree, dtd, sigma) and not satisfies(tree, dtd, fd):
            return tree
    return None


def brute_implies(dtd: DTD, sigma: Iterable[FD], fd: FD, *,
                  domain: Sequence[str] = DEFAULT_DOMAIN,
                  max_word: int = DEFAULT_MAX_WORD,
                  max_trees: int | None = 200_000) -> bool:
    """Bounded-exhaustive implication: ``False`` is definitive,
    ``True`` holds within the enumerated space."""
    return find_countermodel(dtd, sigma, fd, domain=domain,
                             max_word=max_word, max_trees=max_trees) is None
