"""FD satisfaction on XML trees (Section 4).

``T |= S1 -> S2`` iff for all ``t1, t2 ∈ tuples_D(T)``: if
``t1.S1 = t2.S1`` and ``t1.S1 ≠ ⊥`` then ``t1.S2 = t2.S2``.  This is
the Atzeni–Morfuni semantics of FDs over relations with nulls, applied
to the tree-tuple relation.

Satisfaction is invariant under ≡ (unordered equivalence), since
``tuples_D`` is.  The implementation groups tuples by their (non-null)
LHS projection, so a check is linear in ``|tuples_D(T)|`` rather than
quadratic.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.dtd.model import DTD
from repro.fd.model import FD
from repro.tuples.extract import tuples_of
from repro.tuples.model import TreeTuple
from repro.xmltree.model import XMLTree


def satisfies(tree: XMLTree, dtd: DTD, fd: FD, *,
              tuples: Sequence[TreeTuple] | None = None) -> bool:
    """``T |= fd``; pass precomputed ``tuples`` to amortize extraction."""
    return not violating_pairs(tree, dtd, fd, tuples=tuples, limit=1)


def satisfies_all(tree: XMLTree, dtd: DTD, fds: Iterable[FD], *,
                  tuples: Sequence[TreeTuple] | None = None) -> bool:
    """``T |= Σ``."""
    if tuples is None:
        tuples = tuples_of(tree, dtd)
    return all(satisfies(tree, dtd, fd, tuples=tuples) for fd in fds)


def violating_pairs(tree: XMLTree, dtd: DTD, fd: FD, *,
                    tuples: Sequence[TreeTuple] | None = None,
                    limit: int | None = None,
                    ) -> list[tuple[TreeTuple, TreeTuple]]:
    """Pairs of maximal tuples witnessing a violation of ``fd``.

    A pair ``(t1, t2)`` violates ``S1 -> S2`` when both agree non-null
    on ``S1`` but differ somewhere on ``S2``.
    """
    if tuples is None:
        tuples = tuples_of(tree, dtd)
    lhs = sorted(fd.lhs, key=str)
    rhs = sorted(fd.rhs, key=str)
    groups: dict[tuple[str, ...], list[TreeTuple]] = {}
    violations: list[tuple[TreeTuple, TreeTuple]] = []
    for tuple_ in tuples:
        key = tuple_.project(lhs)
        if any(value is None for value in key):
            continue  # the FD's hypothesis needs a non-null LHS
        groups.setdefault(key, []).append(tuple_)  # type: ignore[arg-type]
    for members in groups.values():
        if len(members) < 2:
            continue
        # Within a group all pairs must agree on the RHS, i.e. the RHS
        # projection must be constant.
        by_rhs: dict[tuple[str | None, ...], TreeTuple] = {}
        for member in members:
            by_rhs.setdefault(member.project(rhs), member)
        if len(by_rhs) > 1:
            witnesses = list(by_rhs.values())
            for index in range(1, len(witnesses)):
                violations.append((witnesses[0], witnesses[index]))
                if limit is not None and len(violations) >= limit:
                    return violations
    return violations
