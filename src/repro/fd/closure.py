"""The closure-based FD implication engine (Theorem 3 regime).

Decides ``(D, Σ) |- S -> q`` by saturating two predicates about a
hypothetical pair of maximal tree tuples ``t1, t2`` of the same tree
that agree, non-null, on ``S``:

* ``NN(p)`` — ``t1.p`` and ``t2.p`` are provably non-null,
* ``EQ(p)`` — ``t1.p = t2.p`` is provable (null-tolerant equality).

Structural rules come from the tree-tuple semantics (Definitions 4-6):
the root is shared; non-null paths force non-null ancestors; a node
determines its attributes, its text, and its children of multiplicity
``1``/``?``; tuple maximality forces children of multiplicity
``1``/``+`` of non-null paths to be non-null.

Σ rules use the *hybrid-tuple* argument: for ``S1 -> S2 ∈ Σ``, if each
path of ``S1`` is non-null and is either provably equal or lives in a
subtree hanging off a provably-shared node, then the hybrid maximal
tuple that copies ``t1`` on those subtrees and ``t2`` elsewhere exists
in the same tree; applying the FD to ``(t1, hybrid)`` and using that
the hybrid equals ``t2`` outside the copied subtrees yields
``t1.q' = t2.q'`` for every ``q' ∈ S2`` outside them.  (With
``S1 ⊆ EQ ∩ NN`` no subtree is copied and this degenerates to the
classical transitivity rule.)

When the monotone rules stall, a *null-correlation case split* applies
to a path ``w`` whose nullness is provably correlated between the two
tuples — either ``w ∈ EQ`` (equal values are null together) or ``w`` is
an element path under a shared node (by tuple maximality the shared
parent either has a ``w``-labelled child for both tuples or for
neither).  The rule closes both branches — assuming ``NN(w)``, and
assuming the whole region that must be null with ``w`` is null (hence
trivially equal) — and keeps the facts derivable in *both*.  This is
what validates e.g. ``@A -> L`` against ``{A -> B} ∪ PNF-keys`` in the
nested codings of Proposition 5, where the group key fires only in the
non-null branch.  Splits nest two levels and are pruned to the premise
paths of not-yet-fired, query-relevant FDs, so the common case never
pays for them.

The closure is **sound for every DTD** (including recursive ones — the
rules only ever walk the finite prefix-closure of the mentioned paths)
and **complete for simple DTDs** as far as extensive differential
fuzzing against the exact chase engine and a brute-force model
enumerator can establish; this is the polynomial regime of Theorem 3.
For non-simple DTDs a ``False`` answer must be confirmed by the chase
engine (disjunction can force equalities the multiplicity abstraction
cannot see).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ResourceExhausted
from repro.dtd.model import DTD
from repro.dtd.paths import TEXT_STEP, Path
from repro.faults import plan as _faults
from repro.fd.model import FD
from repro.guard import budget as _guard
from repro.obs import metrics as _obs
from repro.regex.ast import PCData

#: Nesting depth of null-correlation case splits.
SPLIT_DEPTH = 2

_SITE_ITERATION = _faults.register_site(
    "fd.closure.iteration", "fd",
    "each pass of the closure's monotone fixpoint loop")


def closure_implies(dtd: DTD, sigma: Iterable[FD], fd: FD) -> bool:
    """Whether the closure derives ``fd`` from ``(D, Σ)``."""
    sigma = list(sigma)
    with _obs.timer("closure.implies"):
        try:
            for single in fd.expand():
                relevant = _relevant_sigma(sigma, single)
                solver = _Solver(dtd, relevant, single.lhs,
                                 extra=frozenset({single.single_rhs}))
                eq, nn = solver.solve(frozenset(), frozenset(),
                                      SPLIT_DEPTH)
                if _obs.enabled:
                    _obs.observe("closure.derived.eq", len(eq))
                    _obs.observe("closure.derived.nn", len(nn))
                if single.single_rhs not in eq:
                    return False
        except ResourceExhausted as error:
            error.partial.setdefault("engine", "closure")
            error.partial.setdefault("query", str(fd))
            raise
    return True


def pair_closure(dtd: DTD, sigma: list[FD], lhs: frozenset[Path],
                 extra: Iterable[Path] = (),
                 ) -> tuple[frozenset[Path], frozenset[Path]]:
    """Saturate ``(EQ, NN)`` for a pair agreeing non-null on ``lhs``;
    ``extra`` paths are added to the universe so membership can be read
    off the result.  (No Σ relevance pruning here — callers that want
    the full fact set, like the normalization transforms, use this.)"""
    solver = _Solver(dtd, list(sigma), lhs, extra=frozenset(extra))
    return solver.solve(frozenset(), frozenset(), SPLIT_DEPTH)


def _relevant_sigma(sigma: list[FD], query: FD) -> list[FD]:
    """The FDs transitively connected to the query's paths.

    Two paths are *connected* when one is a prefix of the other below
    the root (the root trivially prefixes everything, so length-1
    prefixes are ignored); an FD is relevant when any of its paths
    connects to the growing relevance set.  Dropping the rest is sound
    (fewer derivations) and loses nothing: every rule propagates along
    prefix chains of the paths it touches.
    """
    def chains(paths: Iterable[Path]) -> set[Path]:
        return {prefix for path in paths for prefix in path.prefixes()
                if prefix.length >= 2}

    relevance = chains(query.paths)
    if not relevance:
        return list(sigma)
    kept: list[FD] = []
    pending = list(sigma)
    changed = True
    while changed:
        changed = False
        remaining: list[FD] = []
        for fd in pending:
            fd_chains = chains(fd.paths)
            if fd_chains & relevance:
                kept.append(fd)
                relevance |= fd_chains
                changed = True
            else:
                remaining.append(fd)
        pending = remaining
    return kept


class _Solver:
    """Fixpoint engine for one (D, Σ, lhs, extra) problem, memoizing
    the case-split branch closures."""

    def __init__(self, dtd: DTD, sigma: list[FD], lhs: frozenset[Path],
                 extra: frozenset[Path]) -> None:
        self.dtd = dtd
        self.sigma = sigma
        self.lhs = lhs
        self.universe = self._universe(extra)
        self.root = Path.root(dtd.root)
        self._memo: dict[tuple, tuple[frozenset[Path],
                                      frozenset[Path]]] = {}
        #: When set to a list, top-level rule applications append
        #: (kind, path, reason) events for explanation rendering.
        self.events: list[tuple[str, Path, str]] | None = None
        self._in_branch = 0
        self._budget = _guard.current() if _guard.active else None

    def _universe(self, extra: frozenset[Path]) -> set[Path]:
        mentioned: set[Path] = set(self.lhs) | set(extra)
        for dependency in self.sigma:
            mentioned |= dependency.paths
        universe: set[Path] = set()
        for path in mentioned:
            universe.update(path.prefixes())
        return universe

    # -- the fixpoint -------------------------------------------------------

    def solve(self, assumed_nn: frozenset[Path],
              assumed_eq: frozenset[Path], depth: int,
              ) -> tuple[frozenset[Path], frozenset[Path]]:
        key = (assumed_nn, assumed_eq, depth)
        cached = self._memo.get(key)
        if cached is not None:
            return cached

        nn: set[Path] = set(assumed_nn)
        eq: set[Path] = set(assumed_eq)
        nn.add(self.root)
        eq.add(self.root)
        for path in self.lhs:
            nn.update(path.prefixes())
            eq.add(path)
            if path.is_element:
                eq.update(path.prefixes())

        changed = True
        while changed:
            if self._budget is not None:
                self._budget.tick_steps()
            if _faults.active:
                _faults.fire(_SITE_ITERATION)
            if _obs.enabled:
                _obs.inc("closure.iterations")
            changed = False
            changed |= self._structural_rules(eq, nn)
            changed |= self._sigma_rules(eq, nn)
            if depth > 0 and not changed:
                changed = self._case_split(eq, nn, depth)

        result = (frozenset(eq), frozenset(nn))
        self._memo[key] = result
        return result

    def _record(self, kind: str, path: Path, reason: str) -> None:
        if self.events is not None and not self._in_branch:
            self.events.append((kind, path, reason))

    def _structural_rules(self, eq: set[Path], nn: set[Path]) -> bool:
        changed = False
        # Downward: forced steps stay non-null; determined steps stay
        # equal.
        for path in self.universe:
            if path.length == 1:
                continue
            parent = path.parent
            if parent in nn and path not in nn \
                    and self._step_forced(path):
                nn.add(path)
                self._record("NN", path,
                             f"forced step under non-null {parent}")
                changed = True
            if parent in eq and path not in eq \
                    and self._step_determined(path):
                eq.add(path)
                self._record("EQ", path,
                             f"determined step under equal {parent}")
                changed = True
        # Upward: non-null paths have non-null ancestors; shared nodes
        # have shared parents.
        for path in list(nn):
            if path.length > 1 and path.parent not in nn:
                nn.add(path.parent)
                self._record("NN", path.parent,
                             f"ancestor of non-null {path}")
                changed = True
        for path in list(eq):
            if (path in nn and path.is_element and path.length > 1
                    and path.parent not in eq):
                eq.add(path.parent)
                self._record("EQ", path.parent,
                             f"parent of shared node {path}")
                changed = True
        return changed

    def _sigma_rules(self, eq: set[Path], nn: set[Path]) -> bool:
        changed = False
        for dependency in self.sigma:
            copied_roots = self._hybrid_roots(dependency.lhs, eq, nn)
            if copied_roots is None:
                continue
            for target in dependency.rhs:
                if target in eq:
                    continue
                if any(w.is_prefix_of(target) for w in copied_roots):
                    continue  # the hybrid copies t1 here: no information
                eq.add(target)
                if copied_roots:
                    roots = ", ".join(str(w) for w in
                                      sorted(copied_roots, key=str))
                    reason = (f"FD {dependency} via the hybrid tuple "
                              f"copied at {{{roots}}}")
                else:
                    reason = f"FD {dependency} fires (premise shared)"
                self._record("EQ", target, reason)
                changed = True
        return changed

    def _case_split(self, eq: set[Path], nn: set[Path],
                    depth: int) -> bool:
        for witness in self._split_candidates(eq, nn):
            null_region = self._null_region(witness)
            if self._budget is not None:
                self._budget.tick_branches()
            if _obs.enabled:
                _obs.inc("closure.case_splits")
            self._in_branch += 1
            try:
                branch_nonnull, _ = self.solve(
                    frozenset(nn) | {witness}, frozenset(eq), depth - 1)
                branch_null, _ = self.solve(
                    frozenset(nn), frozenset(eq) | null_region,
                    depth - 1)
            finally:
                self._in_branch -= 1
            common = (branch_nonnull & branch_null) - eq
            if common:
                eq.update(common)
                for fact in sorted(common, key=str):
                    self._record(
                        "EQ", fact,
                        f"case split on nullness of {witness} "
                        "(derivable in both branches)")
                return True  # re-run the cheap monotone rules first
        return False

    def _split_candidates(self, eq: set[Path],
                          nn: set[Path]) -> list[Path]:
        """Null-correlated paths worth splitting on: premise paths of
        FDs that have not fired (and their element prefixes), plus
        derived-equal element paths whose parents are still unshared.

        The second family closes a completeness gap: when a Σ rule
        derives ``EQ(w)`` for an element path ``w`` that is not known
        non-null, the upward "parent of shared node" rule cannot fire,
        yet ``w``'s nullness *is* correlated (equal values are null
        together).  Splitting on ``w`` resolves it — the non-null
        branch shares the parent directly, the null branch nulls the
        whole region that must vanish with ``w`` — so facts like
        ``EQ(parent(w))`` become derivable even when no unfired FD
        happens to mention ``w``.  (Found via the seed-69910 Prop. 6
        pin: a create step rewrote Σ so the only FD mentioning the
        split path disappeared, and a previously-derivable node
        equality silently stopped being derived, making a cured
        attribute path look newly anomalous.)
        """
        candidates: set[Path] = set()
        for dependency in self.sigma:
            if all(p in eq and p in nn for p in dependency.lhs):
                continue
            for premise in dependency.lhs:
                for prefix in premise.prefixes():
                    if prefix in nn or prefix.length == 1:
                        continue
                    correlated = prefix in eq or (
                        prefix.is_element
                        and prefix.parent in eq and prefix.parent in nn)
                    if correlated:
                        candidates.add(prefix)
        for path in eq:
            if (path.is_element and path not in nn and path.length > 1
                    and path.parent not in eq):
                candidates.add(path)
        return sorted(candidates, key=str)

    def _null_region(self, witness: Path) -> frozenset[Path]:
        """Paths null (in both tuples) whenever ``witness`` is: its own
        subtree, widened upward while the step from the parent is
        forced (a node cannot lack a required attribute, text, or
        forced child)."""
        base = witness
        while base.length > 1 and self._step_forced(base):
            base = base.parent
        return frozenset(p for p in self.universe
                         if base.is_prefix_of(p))

    def _hybrid_roots(self, premise: frozenset[Path], eq: set[Path],
                      nn: set[Path]) -> set[Path] | None:
        """The copied-subtree roots ``W`` for an FD premise, or ``None``
        if the hybrid tuple is not guaranteed to exist.

        Every premise path must be non-null; paths not provably equal
        must lie in a subtree whose root hangs off a provably shared
        node — that root is the shortest element-path prefix outside
        ``EQ ∩ NN`` (its parent is inside: the shared region is
        prefix-closed on element paths, and by construction every
        shorter prefix of the chosen root is shared).
        """
        shared_roots: set[Path] = set()
        for path in premise:
            if path not in nn:
                return None
            if path in eq and path in nn:
                continue
            root_candidate: Path | None = None
            for prefix in path.prefixes():
                if prefix.is_element and not (prefix in eq
                                              and prefix in nn):
                    root_candidate = prefix
                    break
            if root_candidate is None:
                # Every element prefix is shared: the path itself is an
                # attribute/text of a shared node and the downward rules
                # will catch up — treat as not yet derivable.
                return None
            shared_roots.add(root_candidate)
        return shared_roots

    # -- DTD step classification ---------------------------------------------

    def _step_forced(self, path: Path) -> bool:
        """A non-null parent forces this step non-null: attributes
        (total by Definition 3), text under ``P = S``, and children
        with multiplicity ``1``/``+`` (tuple maximality)."""
        parent_type = path.parent.last
        step = path.last
        if step.startswith("@"):
            return step in self.dtd.attrs(parent_type)
        if step == TEXT_STEP:
            return isinstance(self.dtd.content(parent_type), PCData)
        return self.dtd.child_multiplicity(parent_type, step).forced

    def _step_determined(self, path: Path) -> bool:
        """Equal (possibly null) parents force this step equal:
        attributes, text, and children with multiplicity ``1``/``?``
        (at most one occurrence, so the maximal tuples pick the same
        child or none)."""
        parent_type = path.parent.last
        step = path.last
        if step.startswith("@"):
            return step in self.dtd.attrs(parent_type)
        if step == TEXT_STEP:
            return isinstance(self.dtd.content(parent_type), PCData)
        return self.dtd.child_multiplicity(
            parent_type, step).at_most_one
