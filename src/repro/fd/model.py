"""The FD type and its textual syntax.

Syntax accepted by :meth:`FD.parse` (one FD per string)::

    courses.course.@cno -> courses.course
    {courses.course, courses.course.taken_by.student.@sno}
        -> courses.course.taken_by.student
    db.conf.issue -> db.conf.issue.inproceedings.@year

Braces around a multi-path side are optional; paths are separated by
commas.  Both sides may list several paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import FDSyntaxError, InvalidFDError
from repro.dtd.model import DTD
from repro.dtd.paths import Path


@dataclass(frozen=True)
class FD:
    """A functional dependency ``lhs -> rhs`` over paths."""

    lhs: frozenset[Path]
    rhs: frozenset[Path]

    def __post_init__(self) -> None:
        if not self.lhs or not self.rhs:
            raise InvalidFDError(
                "both sides of an FD must be non-empty sets of paths")
        object.__setattr__(self, "lhs", frozenset(self.lhs))
        object.__setattr__(self, "rhs", frozenset(self.rhs))

    # -- constructors ------------------------------------------------------

    @classmethod
    def of(cls, lhs: Iterable[Path | str], rhs: Iterable[Path | str] | Path
           | str) -> "FD":
        """Build from paths or path strings; ``rhs`` may be a single
        path."""
        if isinstance(rhs, (Path, str)):
            rhs = [rhs]
        return cls(
            lhs=frozenset(_as_path(p) for p in lhs),
            rhs=frozenset(_as_path(p) for p in rhs),
        )

    @classmethod
    def parse(cls, text: str) -> "FD":
        """Parse ``lhs -> rhs`` textual syntax."""
        if "->" not in text:
            raise FDSyntaxError(f"missing '->' in FD {text!r}")
        left, _, right = text.partition("->")
        return cls(lhs=_parse_side(left, text), rhs=_parse_side(right, text))

    # -- views -------------------------------------------------------------

    @property
    def paths(self) -> frozenset[Path]:
        """All paths mentioned by the FD."""
        return self.lhs | self.rhs

    def expand(self) -> Iterator["FD"]:
        """Split into single-path-RHS FDs (standard wlog reduction)."""
        for path in sorted(self.rhs, key=str):
            yield FD(lhs=self.lhs, rhs=frozenset({path}))

    @property
    def single_rhs(self) -> Path:
        """The RHS path of a single-RHS FD."""
        if len(self.rhs) != 1:
            raise InvalidFDError(f"{self} does not have a single RHS path")
        return next(iter(self.rhs))

    def lhs_element_paths(self) -> list[Path]:
        """The element paths on the left-hand side."""
        return [p for p in self.lhs if p.is_element]

    def validate(self, dtd: DTD) -> "FD":
        """Check that every mentioned path is a path of the DTD."""
        for path in self.paths:
            if not dtd.is_path(path):
                raise InvalidFDError(
                    f"FD {self} mentions {path}, which is not a path "
                    "of the DTD")
        return self

    def rename(self, mapping: dict[Path, Path]) -> "FD":
        """Rewrite paths via an explicit path mapping (used by the
        normalization transformations); unmapped paths are kept."""
        return FD(
            lhs=frozenset(mapping.get(p, p) for p in self.lhs),
            rhs=frozenset(mapping.get(p, p) for p in self.rhs),
        )

    def __str__(self) -> str:
        def side(paths: frozenset[Path]) -> str:
            rendered = ", ".join(str(p) for p in sorted(paths, key=str))
            return "{" + rendered + "}" if len(paths) > 1 else rendered

        return f"{side(self.lhs)} -> {side(self.rhs)}"

    def __repr__(self) -> str:
        return f"FD.parse({str(self)!r})"


def _as_path(value: Path | str) -> Path:
    return value if isinstance(value, Path) else Path.parse(value)


def _parse_side(text: str, original: str) -> frozenset[Path]:
    text = text.strip()
    if text.startswith("{"):
        if not text.endswith("}"):
            raise FDSyntaxError(f"unbalanced braces in FD {original!r}")
        text = text[1:-1]
    parts = [part.strip() for part in text.split(",")]
    paths = frozenset(Path.parse(part) for part in parts if part)
    if not paths:
        raise FDSyntaxError(f"empty side in FD {original!r}")
    return paths


def parse_fds(text: str) -> list[FD]:
    """Parse several FDs: one per non-empty, non-comment (``#``) line."""
    fds = []
    for line in text.splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            fds.append(FD.parse(line))
    return fds
