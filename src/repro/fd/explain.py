"""Human-readable implication derivations.

``explain_implication`` replays the closure engine with event tracing
and renders the derivation chain that establishes (or fails to
establish) ``(D, Σ) |- S -> q`` — the tool-side counterpart of reading
a normalization paper's proofs.  For non-simple DTDs where only the
chase can decide, the explanation reports that escalation happened.
"""

from __future__ import annotations

from typing import Iterable

from repro.dtd.classify import is_simple_dtd
from repro.dtd.paths import Path
from repro.dtd.model import DTD
from repro.fd.closure import SPLIT_DEPTH, _relevant_sigma, _Solver
from repro.fd.model import FD


def closure_derivation(dtd: DTD, sigma: Iterable[FD], fd: FD,
                       ) -> tuple[bool, list[str]]:
    """(derivable?, derivation lines) for a single-RHS FD."""
    sigma = list(sigma)
    target = fd.single_rhs
    relevant = _relevant_sigma(sigma, fd)
    solver = _Solver(dtd, relevant, fd.lhs,
                     extra=frozenset({target}))
    solver.events = []
    eq, _nn = solver.solve(frozenset(), frozenset(), SPLIT_DEPTH)
    derived = target in eq

    lines = [
        "hypothesis: two maximal tuples agree (non-null) on "
        + ", ".join(str(p) for p in sorted(fd.lhs, key=str)),
        f"goal: they agree on {target}",
    ]
    if len(relevant) != len(sigma):
        lines.append(
            f"(pruned {len(sigma) - len(relevant)} FD(s) not connected "
            "to the goal)")
    assert solver.events is not None
    for kind, path, reason in solver.events:
        lines.append(f"derive {kind}({path}): {reason}")
        if kind == "EQ" and path == target:
            break
    if derived:
        lines.append(f"goal reached: EQ({target}) — the FD is implied")
    else:
        lines.append(
            f"fixpoint reached without EQ({target}) — "
            + ("not implied (the closure is complete for this simple "
               "DTD)" if is_simple_dtd(dtd) else
               "the closure cannot decide; the chase engine settles "
               "non-simple DTDs"))
    return derived, lines


def explain_implication(dtd: DTD, sigma: Iterable[FD],
                        fd: FD | str) -> str:
    """A rendered derivation for (each single-RHS expansion of) an FD."""
    if isinstance(fd, str):
        fd = FD.parse(fd)
    sigma = list(sigma)
    blocks: list[str] = []
    for single in fd.expand():
        _derived, lines = closure_derivation(dtd, sigma, single)
        blocks.append("\n".join(lines))
    return ("\n\n".join(blocks)) + "\n"
