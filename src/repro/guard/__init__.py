"""Resource governor for the coNP-hard core (see ``docs/ROBUSTNESS.md``).

Public surface::

    from repro import guard

    with guard.limits(deadline=2.0, max_steps=1_000_000):
        ...                      # engines degrade instead of hanging

:class:`Budget` / :func:`use` / :func:`limits` / :func:`current` live
in :mod:`repro.guard.budget`; the companion exception
:class:`~repro.errors.ResourceExhausted` is re-exported here for
convenience.  Instrumented engine code imports the submodule directly
(``from repro.guard import budget as _guard``) and reads its
``active`` flag, which this package does **not** re-export — a
from-import would freeze the value.
"""

from __future__ import annotations

from repro.errors import ResourceExhausted
from repro.guard.budget import Budget, current, limits, teardown, use

__all__ = ["Budget", "ResourceExhausted", "current", "limits",
           "teardown", "use"]
