"""The cooperative resource governor: budgets, deadlines, degradation.

Theorem 5 makes general XML-FD implication coNP-complete, and every
exact engine in this package (the chase, the closure's case splits, the
brute-force oracle, maximal-tuple enumeration) inherits that worst
case.  A :class:`Budget` turns "may run forever" into "runs until a
declared limit, then raises" — the prerequisite for serving untrusted
inputs: no request may ever run unbounded.

A budget carries four independent limits, all optional:

* ``deadline`` — wall-clock seconds from construction;
* ``max_steps`` — generic engine work units (chase steps, closure
  fixpoint passes, brute-force trees, multiset-match search states);
* ``max_branches`` — disjunction/case-split branches (the ``N_D``
  explosion of Theorems 4/5);
* ``max_nodes`` — tableau/tuple/variant nodes materialized (memory
  proxy).

Budgets are **cooperative**: engines call :meth:`Budget.tick_steps` /
:meth:`~Budget.tick_branches` / :meth:`~Budget.tick_nodes` at the same
sites where :mod:`repro.obs` counters are emitted, and every tick also
checks the deadline, so a live engine notices expiry within one unit of
work.  A tripped limit raises
:class:`~repro.errors.ResourceExhausted` carrying which limit tripped,
the amount spent, and a ``partial`` dict that engines annotate with
progress made so far; the implication facade
(:meth:`repro.fd.implication.ImplicationEngine.decide`) converts the
exception into an honest ``UNKNOWN`` verdict.

Budgets are installed ambiently with :func:`use` (or the :func:`limits`
convenience) so the existing engine signatures stay unchanged::

    from repro import guard

    with guard.limits(deadline=1.5, max_steps=100_000):
        verdict = engine.decide(fd)       # YES / NO / UNKNOWN

Hot-path contract (mirrors :mod:`repro.obs.metrics`): while no budget
is installed, an instrumented site performs one module-attribute read
(``budget.active``) — or, inside engine loops, one ``is None`` test on
a captured local — and nothing else.  ``benchmarks/bench_guard.py``
verifies the disabled overhead stays under 1%.

Budgets install at one of two scopes.  The default (``scope=
"process"``) matches the obs registry: a budget installed in one
thread governs engine work in all of them (ticks themselves are plain
integer increments and safe under the GIL; the worst race is a check
against a just-popped budget).  ``scope="thread"`` installs onto a
per-thread stack that takes precedence over the process stack in
:func:`current` — the isolation primitive ``xnf serve`` builds on: a
threaded server gives every request its own budget, so one
pathological request degrades to UNKNOWN/408 without ticking against
(or being ticked by) its neighbors.  A thread with no thread-scoped
budget still falls back to the process stack, preserving the original
ambient semantics.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

from repro.errors import ResourceExhausted
from repro.obs import metrics as _obs

#: Fast-path flag: ``True`` iff at least one budget is installed (at
#: either scope, in any thread).  Instrumentation sites read this (one
#: module-attribute load) before touching anything else, so unguarded
#: runs pay essentially nothing.
active: bool = False

_stack: list["Budget"] = []
_tls = threading.local()

#: Count of installed budgets across all scopes and threads; guards
#: the :data:`active` flag so concurrent installs/uninstalls in
#: different threads cannot strand it.
_installed = 0
_installed_lock = threading.Lock()


def _thread_stack() -> list["Budget"]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def _note_install() -> None:
    global _installed, active
    with _installed_lock:
        _installed += 1
        active = True


def _note_uninstall(count: int = 1) -> None:
    global _installed, active
    with _installed_lock:
        _installed = max(0, _installed - count)
        active = _installed > 0


class Budget:
    """A mutable bundle of resource limits and spent counters.

    All limits are optional; ``None`` means unlimited.  The deadline
    clock starts at construction (inject ``clock`` to test expiry
    deterministically).
    """

    __slots__ = ("deadline", "max_steps", "max_branches", "max_nodes",
                 "steps", "branches", "nodes", "tripped",
                 "_clock", "_started_at", "_expires_at")

    def __init__(self, *, deadline: float | None = None,
                 max_steps: int | None = None,
                 max_branches: int | None = None,
                 max_nodes: int | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        for name, value in (("deadline", deadline),
                            ("max_steps", max_steps),
                            ("max_branches", max_branches),
                            ("max_nodes", max_nodes)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        self.deadline = deadline
        self.max_steps = max_steps
        self.max_branches = max_branches
        self.max_nodes = max_nodes
        self.steps = 0
        self.branches = 0
        self.nodes = 0
        #: The first limit that tripped ("deadline" / "steps" /
        #: "branches" / "nodes"), or ``None`` while within budget.
        self.tripped: str | None = None
        self._clock = clock
        self._started_at = clock()
        self._expires_at = (self._started_at + deadline
                            if deadline is not None else None)

    # -- spending ----------------------------------------------------------

    def tick_steps(self, n: int = 1) -> None:
        """Spend ``n`` work units; raise if a limit trips."""
        self.steps += n
        if _obs.enabled:
            _obs.inc("guard.checks")
        if self.max_steps is not None and self.steps > self.max_steps:
            self._trip("steps", self.steps, self.max_steps)
        self._check_deadline()

    def tick_branches(self, n: int = 1) -> None:
        """Spend ``n`` disjunction/case-split branches."""
        self.branches += n
        if _obs.enabled:
            _obs.inc("guard.checks")
        if self.max_branches is not None \
                and self.branches > self.max_branches:
            self._trip("branches", self.branches, self.max_branches)
        self._check_deadline()

    def tick_nodes(self, n: int = 1) -> None:
        """Spend ``n`` materialized nodes (tableau, tuple, variant)."""
        self.nodes += n
        if _obs.enabled:
            _obs.inc("guard.checks")
        if self.max_nodes is not None and self.nodes > self.max_nodes:
            self._trip("nodes", self.nodes, self.max_nodes)
        self._check_deadline()

    def check(self) -> None:
        """A deadline-only checkpoint (no counter spent)."""
        if _obs.enabled:
            _obs.inc("guard.checks")
        self._check_deadline()

    # -- inspection --------------------------------------------------------

    def elapsed(self) -> float:
        """Wall-clock seconds since the budget was created."""
        return self._clock() - self._started_at

    def remaining(self) -> dict[str, float | int | None]:
        """Per-limit headroom (``None`` for unlimited dimensions)."""
        return {
            "deadline": (None if self._expires_at is None
                         else max(0.0, self._expires_at - self._clock())),
            "steps": (None if self.max_steps is None
                      else max(0, self.max_steps - self.steps)),
            "branches": (None if self.max_branches is None
                         else max(0, self.max_branches - self.branches)),
            "nodes": (None if self.max_nodes is None
                      else max(0, self.max_nodes - self.nodes)),
        }

    def spent(self) -> dict[str, float | int]:
        """What the budget has consumed so far (for error payloads)."""
        return {"elapsed": self.elapsed(), "steps": self.steps,
                "branches": self.branches, "nodes": self.nodes}

    # -- internals ---------------------------------------------------------

    def _check_deadline(self) -> None:
        if self._expires_at is not None \
                and self._clock() >= self._expires_at:
            self._trip("deadline", self.elapsed(), self.deadline)

    def _trip(self, limit: str, spent, allowed) -> None:
        if self.tripped is None:
            self.tripped = limit
        if _obs.enabled:
            _obs.inc(f"guard.trips.{limit}")
        raise ResourceExhausted(limit, spent=spent, allowed=allowed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        limits = ", ".join(
            f"{name}={value}" for name, value in
            (("deadline", self.deadline), ("max_steps", self.max_steps),
             ("max_branches", self.max_branches),
             ("max_nodes", self.max_nodes))
            if value is not None) or "unlimited"
        return (f"Budget({limits}; spent steps={self.steps} "
                f"branches={self.branches} nodes={self.nodes})")


# ---------------------------------------------------------------------------
# Ambient installation
# ---------------------------------------------------------------------------

def current() -> Budget | None:
    """The innermost installed budget, or ``None``.

    The calling thread's own (thread-scoped) stack wins; a thread
    without one falls back to the process-wide stack.  Engine call
    sites capture this once per decision (guarded by the
    :data:`active` flag) and pass the local down their loops.
    """
    local = getattr(_tls, "stack", None)
    if local:
        return local[-1]
    return _stack[-1] if _stack else None


@contextmanager
def use(budget: Budget, *, scope: str = "process") -> Iterator[Budget]:
    """Install ``budget`` for the duration of the ``with`` body.

    Budgets nest (the innermost wins at instrumentation points; a
    thread-scoped budget shadows any process-scoped one for its own
    thread).  ``scope`` is ``"process"`` (ambient, the default) or
    ``"thread"`` (visible only to the installing thread).  On exit the
    previous budget is restored and, when obs is enabled, the
    remaining headroom of every set limit is recorded into
    ``guard.remaining.*`` histograms so completion margins are
    observable.
    """
    if scope not in ("process", "thread"):
        raise ValueError(f"scope must be 'process' or 'thread', "
                         f"got {scope!r}")
    stack = _thread_stack() if scope == "thread" else _stack
    stack.append(budget)
    _note_install()
    try:
        yield budget
    finally:
        # Remove *this* budget, tolerating a :func:`teardown` that
        # already swept the stack while the context was suspended.
        if budget in stack:
            stack.remove(budget)
            _note_uninstall()
        if _obs.enabled:
            for name, headroom in budget.remaining().items():
                if headroom is not None:
                    _obs.observe(f"guard.remaining.{name}", headroom)
            if budget.tripped is None:
                _obs.inc("guard.completed")


def teardown() -> int:
    """Forcibly uninstall every reachable budget; returns how many
    were removed.

    Normal code never needs this — :func:`use` restores the stacks on
    exit.  It exists for run isolation (the benchmark runner clears
    leftover budgets between runs so one workload's limits can never
    govern the next) and for test harnesses recovering from a body
    that escaped a ``with use(...)`` block abnormally.  Sweeps the
    process stack and the *calling thread's* thread-scoped stack;
    other threads' stacks are unreachable by design (their owners'
    ``with`` blocks still unwind them, and :data:`active` stays
    consistent through the shared install counter).
    """
    local = getattr(_tls, "stack", None) or []
    removed = len(_stack) + len(local)
    _stack.clear()
    local.clear()
    if removed:
        _note_uninstall(removed)
    return removed


@contextmanager
def limits(*, deadline: float | None = None, max_steps: int | None = None,
           max_branches: int | None = None, max_nodes: int | None = None,
           clock: Callable[[], float] = time.monotonic,
           scope: str = "process") -> Iterator[Budget | None]:
    """``use(Budget(...))`` in one call; a no-op when every limit is
    ``None`` (so callers can thread optional CLI flags through
    unconditionally)."""
    if (deadline is None and max_steps is None and max_branches is None
            and max_nodes is None):
        yield None
        return
    with use(Budget(deadline=deadline, max_steps=max_steps,
                    max_branches=max_branches, max_nodes=max_nodes,
                    clock=clock), scope=scope) as budget:
        yield budget
