"""Tree tuples — Section 3 of the paper (Definitions 4-7).

A *tree tuple* over a DTD ``D`` assigns to every path of ``D`` a node
id (element paths), a string (attribute / text paths), or the null
``⊥`` — with the root non-null, node ids used injectively, and nulls
closed under path extension.  Tree tuples are the bridge between XML
documents and relations with nulls, on which the paper defines XML
functional dependencies.

Public surface:

* :class:`TreeTuple` — the tuple itself (null = absence),
* :func:`tree_of` — ``tree_D(t)`` (Definition 5),
* :func:`tuples_of` — ``tuples_D(T)`` (Definition 6),
* :func:`trees_of` — a canonical representative of ``trees_D(X)``
  (Definition 7),
* :func:`is_d_compatible` — the D-compatibility test of Proposition 3.
"""

from repro.tuples.model import TreeTuple, validate_tuple
from repro.tuples.build import tree_of, trees_of
from repro.tuples.extract import count_tuples, tuples_of
from repro.tuples.compat import is_d_compatible, set_subsumed

__all__ = [
    "TreeTuple", "validate_tuple", "tree_of", "trees_of",
    "tuples_of", "count_tuples", "is_d_compatible", "set_subsumed",
]
