"""From tuples back to trees: ``tree_D(t)`` and ``trees_D(X)``.

``tree_of`` implements Definition 5 (children ordered
lexicographically, as the paper specifies).  ``trees_of`` builds the
canonical representative of ``trees_D(X)`` (Definition 7) — the
node-wise union of the member trees, which is the unique-up-to-≡
minimal tree containing every ``tree_D(t)`` when ``X`` is consistent.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import InvalidTreeError
from repro.dtd.model import DTD
from repro.dtd.paths import TEXT_STEP, Path
from repro.obs import metrics as _obs
from repro.tuples.model import TreeTuple
from repro.xmltree.model import XMLTree


def tree_of(tuple_: TreeTuple, dtd: DTD) -> XMLTree:
    """``tree_D(t)``: the XML tree induced by the non-null values."""
    return trees_of([tuple_], dtd)


def trees_of(tuples: Iterable[TreeTuple], dtd: DTD) -> XMLTree:
    """Canonical member of ``trees_D(X)``: the minimal tree containing
    ``tree_D(t)`` for every ``t`` in ``X``.

    Raises :class:`InvalidTreeError` when the tuples are inconsistent
    (no tree contains them all): conflicting labels for a node id, a
    node id reached via two different parents, or conflicting
    attribute / text values.
    """
    tuples = list(tuples)
    if not tuples:
        raise InvalidTreeError("trees_D of an empty tuple set is undefined")
    if _obs.enabled:
        _obs.inc("tuples.trees_built")
        _obs.observe("tuples.trees_built.input_tuples", len(tuples))

    tree = XMLTree()
    node_paths: dict[str, Path] = {}
    # First pass: create element nodes (parents before children, which
    # path-length ordering guarantees).
    element_entries: list[tuple[Path, str]] = []
    for tuple_ in tuples:
        for path, value in tuple_.items():
            if path.is_element:
                element_entries.append((path, value))
    element_entries.sort(key=lambda entry: entry[0].length)
    for path, node in element_entries:
        known = node_paths.get(node)
        if known is not None:
            if known != path:
                raise InvalidTreeError(
                    f"node id {node!r} occurs at both {known} and {path}")
            continue
        if node in tree.labels:
            raise InvalidTreeError(
                f"node id {node!r} reused at {path}")
        if path.length == 1:
            if tree.root is not None and tree.root != node:
                raise InvalidTreeError(
                    f"two distinct roots: {tree.root!r} and {node!r}")
            tree.add_node(path.last, node_id=node)
        else:
            # The parent node id is whatever some tuple assigns to the
            # parent path along this tuple's branch.
            parent = _parent_node_of(tuples, path, node)
            tree.add_node(path.last, node_id=node, parent=parent)
        node_paths[node] = path

    # Second pass: attributes and text.
    for tuple_ in tuples:
        for path, value in tuple_.items():
            if path.is_element:
                continue
            owner = tuple_.get(path.parent)
            if owner is None:
                raise InvalidTreeError(
                    f"{path} is non-null but its parent path is null")
            if path.is_attribute:
                existing = tree.attr(owner, path.last)
                if existing is not None and existing != value:
                    raise InvalidTreeError(
                        f"conflicting values {existing!r} / {value!r} for "
                        f"{path} on node {owner!r}")
                tree.attributes[(owner, path.last)] = value
            else:  # text
                existing_text = tree.text(owner)
                if existing_text is not None and existing_text != value:
                    raise InvalidTreeError(
                        f"conflicting text for node {owner!r}: "
                        f"{existing_text!r} / {value!r}")
                if tree.children(owner):
                    raise InvalidTreeError(
                        f"node {owner!r} has both text and children")
                tree.set_text(owner, value)

    # Definition 5: children ordered lexicographically (by label, then
    # node id, matching the paper's canonical order on values).
    for node, body in list(tree.content.items()):
        if isinstance(body, list):
            tree.content[node] = sorted(
                body, key=lambda child: (tree.label(child), child))
    return tree.freeze()


def _parent_node_of(tuples: Sequence[TreeTuple], path: Path,
                    node: str) -> str:
    parent_path = path.parent
    parents: set[str] = set()
    for tuple_ in tuples:
        if tuple_.get(path) == node:
            parent = tuple_.get(parent_path)
            if parent is None:
                raise InvalidTreeError(
                    f"{path} is non-null but {parent_path} is null")
            parents.add(parent)
    if len(parents) > 1:
        raise InvalidTreeError(
            f"node id {node!r} at {path} has conflicting parents "
            f"{sorted(parents)}")
    if not parents:
        raise AssertionError("unreachable: node came from some tuple")
    return parents.pop()
