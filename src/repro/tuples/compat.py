"""D-compatibility of tuple sets and the set ordering ``⊑``.

``X ⊆ T(D)`` is *D-compatible* when some tree ``T < D`` has
``X ⊆ tuples_D(T)`` — the hypothesis of Proposition 3.  The witness, if
one exists, can always be taken to be the canonical merge
``trees_of(X)``, which is what this module checks.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import InvalidTreeError
from repro.dtd.model import DTD
from repro.obs import metrics as _obs
from repro.tuples.build import trees_of
from repro.tuples.extract import tuples_of
from repro.tuples.model import TreeTuple
from repro.xmltree.conformance import is_compatible


def set_subsumed(first: Iterable[TreeTuple],
                 second: Iterable[TreeTuple]) -> bool:
    """``X ⊑' Y``: every tuple of ``X`` is subsumed by some tuple of
    ``Y`` (the ordering used in Theorem 1 / Proposition 3)."""
    second = list(second)
    for t1 in first:
        if _obs.enabled:
            _obs.inc("tuples.subsumption.checks")
        if not any(t1.subsumed_by(t2) for t2 in second):
            if _obs.enabled:
                _obs.inc("tuples.subsumption.discards")
            return False
    return True


def is_d_compatible(tuples: Iterable[TreeTuple], dtd: DTD) -> bool:
    """Whether ``X`` is D-compatible: ``∃T < D`` with
    ``X ⊆ tuples_D(T)``.

    If any witness exists, the canonical merge works: any tree
    containing all of ``X`` subsumes the merge, and shrinking a tree
    only shrinks (w.r.t. ⊑') its maximal-tuple set, so membership in
    the merge's tuple set is the exact test.
    """
    tuples = list(tuples)
    if not tuples:
        return True
    try:
        merged = trees_of(tuples, dtd)
    except InvalidTreeError:
        return False
    if not is_compatible(merged, dtd):
        return False
    maximal = set(tuples_of(merged, dtd, check_compatible=False))
    return all(t in maximal for t in tuples)
