"""``tuples_D(T)`` — Definition 6: the maximal tree tuples of a tree.

A maximal tuple picks, along every branch it follows, exactly one child
per (node, child element type) pair; maximality (w.r.t. the ⊑ ordering
on tuples with nulls) forces a choice whenever at least one child with
that label exists.  The set of maximal tuples is therefore the product,
over the visited nodes, of their per-label child choices.

The number of tuples can be exponential in document depth in the worst
case; :func:`count_tuples` computes the count without materializing
them, and :func:`iter_tuples` yields them lazily.  The enumeration is
*streaming*: the nested per-label product is walked with recursive
generators (re-enumerating subtrees per combination prefix instead of
materializing alternative lists), so peak memory stays proportional to
document depth, not to the tuple count — wide DTDs can be consumed
tuple by tuple under a :mod:`repro.guard` node budget, which is ticked
per node visit and trips with :class:`~repro.errors.ResourceExhausted`
before an unbounded product can run away.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import ConformanceError, ResourceExhausted
from repro.dtd.model import DTD
from repro.dtd.paths import TEXT_STEP, Path
from repro.faults import plan as _faults
from repro.guard import budget as _guard
from repro.obs import metrics as _obs
from repro.tuples.model import TreeTuple
from repro.xmltree.conformance import is_compatible
from repro.xmltree.model import XMLTree

_SITE_NODE = _faults.register_site(
    "tuples.extract.node", "tuples",
    "each node visit of the streaming tuple enumeration")


def tuples_of(tree: XMLTree, dtd: DTD, *,
              check_compatible: bool = True) -> list[TreeTuple]:
    """``tuples_D(T)`` for a tree compatible with ``D``."""
    return list(iter_tuples(tree, dtd, check_compatible=check_compatible))


def iter_tuples(tree: XMLTree, dtd: DTD, *,
                check_compatible: bool = True) -> Iterator[TreeTuple]:
    """Lazily enumerate ``tuples_D(T)``."""
    if check_compatible and not is_compatible(tree, dtd):
        raise ConformanceError(
            "tuples_D(T) requires T < D (paths(T) ⊆ paths(D))")
    assert tree.root is not None
    budget = _guard.current() if _guard.active else None
    root_path = Path.root(tree.label(tree.root))
    produced = 0
    try:
        for assignment in _subtree_tuples(tree, dtd, tree.root,
                                          root_path, budget):
            if _obs.enabled:
                _obs.inc("tuples.materialized")
            produced += 1
            yield TreeTuple(assignment)
    except ResourceExhausted as error:
        error.partial.setdefault("engine", "tuples")
        error.partial.setdefault("tuples_yielded", produced)
        raise


def _subtree_tuples(tree: XMLTree, dtd: DTD, node: str, path: Path,
                    budget: "_guard.Budget | None" = None,
                    ) -> Iterator[dict[Path, str]]:
    """All maximal partial assignments for the subtree rooted at
    ``node`` (situated at ``path``), streamed.

    The per-label choices multiply, so the product is walked lazily: a
    recursive generator per label level, re-enumerating the deeper
    subtrees for every prefix combination.  This trades repeated
    traversal for bounded memory (nothing beyond the O(depth) generator
    frames and the assignment under construction is retained), and the
    node budget — ticked once per node visit — therefore bounds the
    *work* of the enumeration, not just its output size.
    """
    if budget is not None:
        budget.tick_nodes()
    if _faults.active:
        _faults.fire(_SITE_NODE)
    base: dict[Path, str] = {path: node}
    for name, value in tree.attrs_of(node).items():
        base[path.child(name)] = value
    text = tree.text(node)
    if text is not None:
        base[path.child(TEXT_STEP)] = text

    labels = sorted({tree.label(child) for child in tree.children(node)})
    if not labels:
        yield base
        return

    def alternatives(label: str) -> Iterator[dict[Path, str]]:
        child_path = path.child(label)
        for child in tree.children_with_label(node, label):
            yield from _subtree_tuples(tree, dtd, child, child_path,
                                       budget)

    def combine(index: int,
                acc: dict[Path, str]) -> Iterator[dict[Path, str]]:
        if index == len(labels):
            yield acc
            return
        for piece in alternatives(labels[index]):
            merged = dict(acc)
            merged.update(piece)
            yield from combine(index + 1, merged)

    yield from combine(0, base)


def count_tuples(tree: XMLTree, dtd: DTD | None = None) -> int:
    """``|tuples_D(T)|`` computed without materializing the tuples."""
    assert tree.root is not None

    def count(node: str) -> int:
        labels: dict[str, int] = {}
        for child in tree.children(node):
            label = tree.label(child)
            labels[label] = labels.get(label, 0) + 0  # ensure key
        total = 1
        for label in {tree.label(c) for c in tree.children(node)}:
            total *= sum(count(child)
                         for child in tree.children_with_label(node, label))
        return total

    return count(tree.root)
