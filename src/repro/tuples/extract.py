"""``tuples_D(T)`` — Definition 6: the maximal tree tuples of a tree.

A maximal tuple picks, along every branch it follows, exactly one child
per (node, child element type) pair; maximality (w.r.t. the ⊑ ordering
on tuples with nulls) forces a choice whenever at least one child with
that label exists.  The set of maximal tuples is therefore the product,
over the visited nodes, of their per-label child choices.

The number of tuples can be exponential in document depth in the worst
case; :func:`count_tuples` computes the count without materializing
them, and :func:`iter_tuples` yields them lazily.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.errors import ConformanceError
from repro.dtd.model import DTD
from repro.dtd.paths import TEXT_STEP, Path
from repro.obs import metrics as _obs
from repro.tuples.model import TreeTuple
from repro.xmltree.conformance import is_compatible
from repro.xmltree.model import XMLTree


def tuples_of(tree: XMLTree, dtd: DTD, *,
              check_compatible: bool = True) -> list[TreeTuple]:
    """``tuples_D(T)`` for a tree compatible with ``D``."""
    return list(iter_tuples(tree, dtd, check_compatible=check_compatible))


def iter_tuples(tree: XMLTree, dtd: DTD, *,
                check_compatible: bool = True) -> Iterator[TreeTuple]:
    """Lazily enumerate ``tuples_D(T)``."""
    if check_compatible and not is_compatible(tree, dtd):
        raise ConformanceError(
            "tuples_D(T) requires T < D (paths(T) ⊆ paths(D))")
    assert tree.root is not None
    root_path = Path.root(tree.label(tree.root))
    for assignment in _subtree_tuples(tree, dtd, tree.root, root_path):
        if _obs.enabled:
            _obs.inc("tuples.materialized")
        yield TreeTuple(assignment)


def _subtree_tuples(tree: XMLTree, dtd: DTD, node: str,
                    path: Path) -> Iterator[dict[Path, str]]:
    """All maximal partial assignments for the subtree rooted at
    ``node`` (situated at ``path``)."""
    base: dict[Path, str] = {path: node}
    for name, value in tree.attrs_of(node).items():
        base[path.child(name)] = value
    text = tree.text(node)
    if text is not None:
        base[path.child(TEXT_STEP)] = text

    labels = sorted({tree.label(child) for child in tree.children(node)})
    if not labels:
        yield base
        return

    per_label: list[list[dict[Path, str]]] = []
    for label in labels:
        child_path = path.child(label)
        alternatives: list[dict[Path, str]] = []
        for child in tree.children_with_label(node, label):
            alternatives.extend(
                _subtree_tuples(tree, dtd, child, child_path))
        per_label.append(alternatives)

    for combination in itertools.product(*per_label):
        assignment = dict(base)
        for piece in combination:
            assignment.update(piece)
        yield assignment


def count_tuples(tree: XMLTree, dtd: DTD | None = None) -> int:
    """``|tuples_D(T)|`` computed without materializing the tuples."""
    assert tree.root is not None

    def count(node: str) -> int:
        labels: dict[str, int] = {}
        for child in tree.children(node):
            label = tree.label(child)
            labels[label] = labels.get(label, 0) + 0  # ensure key
        total = 1
        for label in {tree.label(c) for c in tree.children(node)}:
            total *= sum(count(child)
                         for child in tree.children_with_label(node, label))
        return total

    return count(tree.root)
