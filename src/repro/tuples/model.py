"""The tree-tuple model (Definition 4).

A :class:`TreeTuple` is stored sparsely: only non-null paths appear in
the mapping (``t.p = ⊥`` is represented by absence), which keeps tuples
finite even over recursive DTDs, exactly as the definition requires.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import InvalidTreeError
from repro.dtd.model import DTD
from repro.dtd.paths import Path


class TreeTuple:
    """An immutable tree tuple: ``Path -> node id | string`` (sparse)."""

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[Path, str]) -> None:
        self._values: dict[Path, str] = dict(values)
        self._hash: int | None = None

    # -- accessors ---------------------------------------------------------

    def get(self, path: Path) -> str | None:
        """``t.p`` — ``None`` encodes the null ``⊥``."""
        return self._values.get(path)

    def __getitem__(self, path: Path) -> str | None:
        return self._values.get(path)

    @property
    def paths(self) -> frozenset[Path]:
        """The non-null domain (finite by Definition 4)."""
        return frozenset(self._values)

    def items(self) -> Iterator[tuple[Path, str]]:
        return iter(self._values.items())

    def non_null(self, paths: Iterable[Path]) -> bool:
        """``t.S ≠ ⊥``: every listed path is non-null."""
        return all(path in self._values for path in paths)

    def agrees_with(self, other: "TreeTuple",
                    paths: Iterable[Path]) -> bool:
        """``t.S = t'.S`` (null-tolerant: ⊥ = ⊥ counts as agreement)."""
        return all(self.get(path) == other.get(path) for path in paths)

    def project(self, paths: Iterable[Path]) -> tuple[str | None, ...]:
        """The value vector on ``paths`` (in the given order)."""
        return tuple(self.get(path) for path in paths)

    # -- ordering (Section 3, ⊑) --------------------------------------------

    def subsumed_by(self, other: "TreeTuple") -> bool:
        """``t1 ⊑ t2``: wherever ``t1`` is non-null, ``t2`` agrees."""
        return all(other.get(path) == value
                   for path, value in self._values.items())

    def strictly_subsumed_by(self, other: "TreeTuple") -> bool:
        """``t1 ⊏ t2``."""
        return self.subsumed_by(other) and self != other

    # -- dunder ---------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeTuple):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._values.items()))
        return self._hash

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(
            f"{path}={value!r}"
            for path, value in sorted(self._values.items(),
                                      key=lambda item: str(item[0])))
        return f"TreeTuple({entries})"


def validate_tuple(tuple_: TreeTuple, dtd: DTD) -> None:
    """Check the Definition 4 conditions of a tuple against a DTD.

    Raises :class:`InvalidTreeError` on the first violation.
    """
    values = dict(tuple_.items())
    root_path = Path.root(dtd.root)
    if root_path not in values:
        raise InvalidTreeError("t(r) must be non-null (Definition 4)")
    seen_nodes: dict[str, Path] = {}
    for path, value in values.items():
        if not dtd.is_path(path):
            raise InvalidTreeError(f"{path} is not a path of the DTD")
        if path.is_element:
            previous = seen_nodes.get(value)
            if previous is not None and previous != path:
                raise InvalidTreeError(
                    f"node id {value!r} used for both {previous} and "
                    f"{path} (Definition 4 requires injectivity)")
            seen_nodes[value] = path
        # Null closure: every prefix of a non-null path must be non-null.
        for prefix in path.prefixes(proper=True):
            if prefix not in values:
                raise InvalidTreeError(
                    f"{path} is non-null but its prefix {prefix} is null")
